"""Regression tests for the engine timing/delivery bug fixes.

Each class pins one of the fixed bugs:

* async start-event sends used to be stamped ``send_time = i`` (one clock
  tick per start event), conflating processor index with time in the
  per-cycle histogram;
* two same-cycle messages to a *waking* processor on the same port were
  silently appended to its wake inbox while awake processors raised;
* ``default_cycle_budget`` claimed the Figure 2 ``log₁.₅`` bound but
  computed with ``log₂``;
* ``TraceStats.merge`` dropped both logs even when both operands kept
  theirs.
"""

from __future__ import annotations

import math

import pytest

from repro.asynch import AsyncProcess, run_asynchronous
from repro.core import LEFT, RIGHT, RingConfiguration, SimulationError
from repro.core.message import Envelope, Port
from repro.core.tracing import TraceStats
from repro.sync import Out, SyncProcess, WakeupSchedule, run_synchronous
from repro.sync.simulator import default_cycle_budget


class StartAndEcho(AsyncProcess):
    """Sends at start, echoes the first arrival, halts on the second."""

    def __init__(self, inp, n):
        super().__init__(inp, n)
        self.got = 0

    def on_message(self, ctx, port, payload):
        self.got += 1
        if self.got == 1:
            ctx.send(port.opposite, "echo")
        elif self.got == 2:
            ctx.halt(None)

    def on_start(self, ctx):
        ctx.send_both(self.input)


class TestAsyncStartTiming:
    def test_start_sends_stamped_zero(self):
        """Every start-event send carries send_time 0, for any processor."""
        n = 7
        config = RingConfiguration.oriented(range(n))
        result = run_asynchronous(config, StartAndEcho, keep_log=True)
        start_sends = [env for env in result.stats.log if env.send_time == 0]
        assert len(start_sends) == 2 * n
        assert {env.sender for env in start_sends} == set(range(n))

    def test_histogram_does_not_conflate_index_with_time(self):
        """All-start traffic lands in one histogram bucket, not n of them."""

        class StartOnly(AsyncProcess):
            def on_start(self, ctx):
                ctx.send_both("x")
                ctx.halt(None)

            def on_message(self, ctx, port, payload):  # pragma: no cover
                raise AssertionError("unreachable: all halt at start")

        n = 9
        result = run_asynchronous(
            RingConfiguration.oriented([0] * n), StartOnly, keep_log=True
        )
        assert result.stats.per_cycle == {0: 2 * n}

    def test_delivery_clock_starts_after_start_phase(self):
        """The k-th delivery's sends are stamped k, not offset by n start ticks."""
        n = 5
        config = RingConfiguration.oriented(range(n))
        result = run_asynchronous(config, StartAndEcho, keep_log=True)
        delivery_times = sorted(
            env.send_time for env in result.stats.log if env.send_time > 0
        )
        # The very first delivery triggers an echo stamped 1 (seed: n+1).
        assert delivery_times
        assert delivery_times[0] == 1


class _ColliderRing(RingConfiguration):
    """Routes every send onto processor 1's LEFT port.

    Ring routing can never put two same-cycle messages on one port (the
    two channels into a processor face opposite physical directions), so
    the engine's per-port collision guard is exercised with this white-box
    override.
    """

    def arrival_port(self, sender, out_port):
        return 1, Port.LEFT


class _Shout(SyncProcess):
    def run(self):
        if self.input == "S":
            yield Out(left="a", right="b")
        else:
            yield Out()  # stay alive through the collision cycle
        return "done"


class TestSamePortCollision:
    def test_awake_receiver_raises(self):
        config = _ColliderRing(("S", 0, 0), (1, 1, 1))
        with pytest.raises(SimulationError, match="two messages on one port"):
            run_synchronous(config, _Shout)

    def test_waking_receiver_raises_too(self):
        """The one-message-per-port rule applies to wake messages as well."""
        config = _ColliderRing(("S", 0, 0), (1, 1, 1))
        schedule = WakeupSchedule((0, 100, 0))
        with pytest.raises(SimulationError, match="two messages on one port"):
            run_synchronous(config, _Shout, wakeup=schedule)

    def test_two_wake_messages_on_distinct_ports_allowed(self):
        """Both neighbors may wake a sleeper in the same cycle."""

        class WakeBoth(SyncProcess):
            def run(self):
                if self.woke_spontaneously:
                    yield Out(left="w", right="w")
                    return "waker"
                return sorted(port.value for port, _ in self.wake_inbox)

        schedule = WakeupSchedule((0, 100, 0))
        result = run_synchronous(
            RingConfiguration.oriented([0, 0, 0]), WakeBoth, wakeup=schedule
        )
        assert result.outputs[1] == ["left", "right"]


class TestCycleBudget:
    def test_covers_figure2_log15_bound_with_headroom(self):
        """The budget must dominate n(2·log₁.₅ n + 1) by an order of magnitude."""
        for n in (2, 3, 8, 16, 81, 128, 729, 4096):
            fig2 = n * (2 * math.log(max(2, n), 1.5) + 1)
            assert default_cycle_budget(n) >= 10 * fig2, n

    def test_monotone(self):
        sizes = (2, 4, 8, 16, 64, 256, 1024)
        budgets = [default_cycle_budget(n) for n in sizes]
        assert budgets == sorted(budgets)


def _envelope(time: int, payload="x") -> Envelope:
    return Envelope(
        sender=0,
        receiver=1,
        out_port=Port.RIGHT,
        in_port=Port.LEFT,
        payload=payload,
        send_time=time,
    )


class TestMergePreservesLogs:
    def test_both_logs_concatenated(self):
        a = TraceStats(keep_log=True)
        b = TraceStats(keep_log=True)
        a.record(_envelope(0, "a"))
        b.record(_envelope(1, "b"))
        merged = a.merge(b)
        assert merged.keep_log
        assert [env.payload for env in merged.log] == ["a", "b"]
        assert merged.messages == 2
        assert merged.per_cycle == {0: 1, 1: 1}

    def test_one_side_without_log_drops_it(self):
        a = TraceStats(keep_log=True)
        b = TraceStats(keep_log=False)
        a.record(_envelope(0))
        b.record(_envelope(1))
        merged = a.merge(b)
        assert not merged.keep_log
        assert merged.log == []
        assert merged.messages == 2

    def test_merge_does_not_alias_operand_logs(self):
        a = TraceStats(keep_log=True)
        b = TraceStats(keep_log=True)
        a.record(_envelope(0))
        merged = a.merge(b)
        merged.log.append(_envelope(9))
        assert len(a.log) == 1


class TestIncrementalPending:
    def test_self_ring_channel_readdition(self):
        """n=1: a handler's self-send re-fills the channel it just drained."""

        class SelfTalk(AsyncProcess):
            def __init__(self, inp, n):
                super().__init__(inp, n)
                self.got = 0

            def on_start(self, ctx):
                ctx.send(RIGHT, 0)

            def on_message(self, ctx, port, payload):
                self.got += 1
                if payload < 3:
                    ctx.send(RIGHT, payload + 1)
                else:
                    ctx.halt(self.got)

        result = run_asynchronous(RingConfiguration.oriented([0]), SelfTalk)
        assert result.outputs == (4,)
        assert result.stats.messages == 4

    def test_events_equal_messages_at_quiescence(self):
        """Every sent message is popped exactly once before quiescence."""
        n = 6
        result = run_asynchronous(
            RingConfiguration.oriented(range(n)), StartAndEcho
        )
        # 2n start sends plus exactly one echo per processor.
        assert result.stats.messages == 3 * n
