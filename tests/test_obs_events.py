"""The repro.obs event stream: recorder semantics and engine hook-up.

Two layers under test.  First the :class:`EventRecorder` in isolation —
its FIFO channel mirrors, message-id linking, the Lamport clock rules
(tick on send, ``max+1`` on receive, no tick on drop), and the one-slot
pending-copy protocol behind ``duplicate``.  Then the engines end to end:
a recorded run must attach a stream that reconciles field-for-field with
the same run's :class:`TraceStats`, and recording must not perturb the
run itself (outputs, counters and logs stay byte-identical).
"""

from __future__ import annotations

import random

import pytest

from repro.core.message import Port
from repro.core.ring import RingConfiguration
from repro.obs import (
    CLOCK_CYCLE,
    CLOCK_LAMPORT,
    EVENT_KINDS,
    EventRecorder,
    Recorder,
    assert_reconciled,
    reconcile,
)
from repro.runtime.spec import RunSpec, execute


def oriented_ring(bits) -> RingConfiguration:
    return RingConfiguration.oriented(tuple(bits))


def recorded(spec: RunSpec):
    """Run a spec with recording on; returns (result, events)."""
    result = execute(spec.with_(record=True))
    assert result.events is not None
    return result, result.events


class TestRecorderUnit:
    """EventRecorder semantics, no engine involved."""

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError):
            EventRecorder(clock="wall")

    def test_seq_is_emission_order(self):
        rec = EventRecorder(clock=CLOCK_CYCLE)
        rec.wake(0, 0)
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "x", 1, 0, channel=("c",))
        rec.deliver(("c",), 1)
        assert [e.seq for e in rec.events] == list(range(len(rec.events)))
        assert all(e.kind in EVENT_KINDS for e in rec.events)

    def test_send_emits_send_and_enqueue_linked_by_msg(self):
        rec = EventRecorder(clock=CLOCK_CYCLE)
        rec.send(2, 3, Port.RIGHT, Port.LEFT, "hello", 5, 7, channel="ch")
        send, enqueue = rec.events
        assert (send.kind, enqueue.kind) == ("send", "enqueue")
        assert send.msg == enqueue.msg == 0
        assert (send.proc, send.peer) == (2, 3)
        assert (enqueue.proc, enqueue.peer) == (3, 2)
        assert send.port == "right" and enqueue.port == "left"
        assert send.bits == 5 and send.etime == 7

    def test_channel_mirror_is_fifo(self):
        rec = EventRecorder(clock=CLOCK_CYCLE)
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "a", 1, 0, channel="ch")
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "b", 1, 0, channel="ch")
        rec.deliver("ch", 1)
        rec.deliver("ch", 2)
        delivers = [e for e in rec.events if e.kind == "deliver"]
        assert [e.payload for e in delivers] == ["a", "b"]
        assert [e.msg for e in delivers] == [0, 1]

    def test_lamport_send_ticks_and_deliver_witnesses(self):
        rec = EventRecorder(clock=CLOCK_LAMPORT)
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "a", 1, 0, channel="ch")
        send = rec.events[0]
        assert send.time == 1  # first local event at processor 0
        rec.deliver("ch", 1)
        deliver = next(e for e in rec.events if e.kind == "deliver")
        # Receive rule: max(local=0, send stamp=1) + 1.
        assert deliver.time == 2
        # The delivery is the receiver's state transition.
        assert rec.events[-1].kind == "state-transition"
        assert rec.events[-1].time == 2

    def test_lamport_drop_keeps_send_stamp_and_ticks_nothing(self):
        rec = EventRecorder(clock=CLOCK_LAMPORT)
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "a", 1, 0, channel="ch")
        send_stamp = rec.events[0].time
        rec.drop("ch", 3, reason="adversary")
        drop = rec.events[-1]
        assert drop.kind == "drop" and drop.detail == "adversary"
        assert drop.time == send_stamp
        # No state change at the receiver: its clock is still untouched.
        rec.send(1, 0, Port.LEFT, Port.RIGHT, "b", 1, 0, channel="back")
        assert rec.events[-2].time == 1  # processor 1's first tick

    def test_duplicate_copy_is_delivered_before_original(self):
        rec = EventRecorder(clock=CLOCK_LAMPORT)
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "tok", 1, 0, channel="ch")
        original = rec.events[0].msg
        rec.duplicate("ch", 1)
        dup = rec.events[-1]
        assert dup.kind == "duplicate"
        assert dup.msg != original and dup.detail == f"copy-of:{original}"
        rec.deliver("ch", 2)  # the copy
        rec.deliver("ch", 3)  # the original, still at the mirror's head
        delivered = [e.msg for e in rec.events if e.kind == "deliver"]
        assert delivered == [dup.msg, original]

    def test_duplicate_copy_can_be_dropped(self):
        rec = EventRecorder(clock=CLOCK_LAMPORT)
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "tok", 1, 0, channel="ch")
        rec.duplicate("ch", 1)
        copy_id = rec.events[-1].msg
        rec.drop("ch", 2)
        assert rec.events[-1].msg == copy_id
        rec.deliver("ch", 3)
        assert rec.events[-1].kind == "state-transition"
        delivers = [e for e in rec.events if e.kind == "deliver"]
        assert [e.msg for e in delivers] == [0]

    def test_base_recorder_is_noop(self):
        rec = Recorder()
        rec.send(0, 1, Port.RIGHT, Port.LEFT, "x", 1, 0, channel="ch")
        rec.deliver("ch", 1)
        rec.drop("ch", 1)
        rec.duplicate("ch", 1)
        rec.wake(0, 0)
        rec.step(0, 1)
        rec.halt(0, 2, output=1)
        rec.crash(0, 3)
        rec.schedule("ch", 0)  # nothing raised, nothing stored


class TestSyncEngineRecording:
    def test_cycle_stamps_and_reconciliation(self):
        spec = RunSpec.make(
            engine="sync",
            ring=oriented_ring((0, 1, 1, 1, 1)),
            algorithm="sync-and",
            keep_log=True,
        )
        result, events = recorded(spec)
        assert_reconciled(events, result.stats, engine="sync")
        sends = [e for e in events if e.kind == "send"]
        assert all(e.time == e.etime for e in events if e.kind != "schedule")
        assert {e.etime for e in sends} <= set(result.stats.per_cycle)
        wakes = [e for e in events if e.kind == "wake"]
        assert len(wakes) == 5 and all(e.etime == 0 for e in wakes)
        halts = [e for e in events if e.kind == "halt"]
        assert sorted(e.proc for e in halts) == [0, 1, 2, 3, 4]
        assert {e.payload for e in halts} == {0}  # AND of inputs with a zero

    def test_recording_does_not_perturb_the_run(self):
        spec = RunSpec.make(
            engine="sync",
            ring=oriented_ring((1, 0, 1, 1, 0, 1)),
            algorithm="fig2-input-distribution",
            keep_log=True,
        )
        plain = execute(spec)
        traced = execute(spec.with_(record=True))
        assert plain.outputs == traced.outputs
        assert plain.stats.messages == traced.stats.messages
        assert plain.stats.bits == traced.stats.bits
        assert plain.stats.per_cycle == traced.stats.per_cycle
        assert plain.stats.log == traced.stats.log
        assert plain.events is None and traced.events is not None

    def test_sync_drops_to_halted_processors_are_events(self):
        # The AND wave: early halters still receive announcements, which
        # the engine counts as immediate drops.
        spec = RunSpec.make(
            engine="sync",
            ring=oriented_ring((0,) + (1,) * 7),
            algorithm="sync-and",
        )
        result, events = recorded(spec)
        # Conservation always holds for the stream:
        n_send = sum(1 for e in events if e.kind == "send")
        n_del = sum(1 for e in events if e.kind == "deliver")
        n_drop = sum(1 for e in events if e.kind == "drop")
        assert n_send == n_del + n_drop
        assert not reconcile(events, result.stats, engine="sync")


class TestAsyncEngineRecording:
    def _spec(self, **kwargs) -> RunSpec:
        ring = RingConfiguration.random(6, random.Random(11), oriented=True)
        base = dict(
            engine="async",
            ring=ring,
            algorithm="input-distribution",
            params={"assume_oriented": True},
            scheduler="round-robin",
        )
        base.update(kwargs)
        return RunSpec.make(**base)

    def test_lamport_stream_reconciles(self):
        result, events = recorded(self._spec())
        assert_reconciled(events, result.stats, engine="async")
        # One schedule decision per delivery-or-drop.
        kinds = {e.kind: sum(1 for x in events if x.kind == e.kind) for e in events}
        assert kinds["schedule"] == kinds["deliver"] + kinds.get("drop", 0)

    def test_lamport_monotone_per_processor(self):
        _, events = recorded(self._spec(scheduler="random", scheduler_seed=5))
        last = {}
        for event in events:
            if event.proc is None or event.kind in ("drop", "duplicate", "enqueue"):
                continue  # stamped with foreign clocks by design
            assert event.time >= last.get(event.proc, 0)
            last[event.proc] = event.time

    def test_dup_fault_profile_records_duplicates(self):
        labels = list(range(1, 6))
        random.Random(0).shuffle(labels)
        ring = RingConfiguration.oriented(tuple(labels))
        spec = RunSpec.make(
            engine="async",
            ring=ring,
            algorithm="chang-roberts",
            scheduler="random",
            scheduler_seed=0,
            fault_profile="dup",
            fault_seed=1,
        )
        result, events = recorded(spec)
        assert result.stats.duplicated > 0
        dups = [e for e in events if e.kind == "duplicate"]
        assert len(dups) == result.stats.duplicated
        assert all(e.detail.startswith("copy-of:") for e in dups)
        assert_reconciled(events, result.stats, engine="async")

    def test_async_synchronized_records_in_cycle_mode(self):
        ring = RingConfiguration.random(5, random.Random(2), oriented=True)
        spec = RunSpec.make(
            engine="async-synchronized",
            ring=ring,
            algorithm="input-distribution",
            params={"assume_oriented": True},
        )
        result, events = recorded(spec)
        assert_reconciled(events, result.stats, engine="async")
        assert all(e.time == e.etime for e in events if e.kind == "send")

    def test_recording_does_not_perturb_async_run(self):
        spec = self._spec(scheduler="random", scheduler_seed=9, keep_log=True)
        plain = execute(spec)
        traced = execute(spec.with_(record=True))
        assert plain.outputs == traced.outputs
        assert plain.stats.messages == traced.stats.messages
        assert plain.stats.delivered == traced.stats.delivered
        assert plain.stats.log == traced.stats.log
