"""§4.2.4: bit-efficient start synchronization (speed-1 / speed-½ pairs)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algorithms.start_sync import message_bound as fig5_bound
from repro.algorithms.start_sync_bits import (
    cycle_bound,
    message_bound,
    synchronize_start_bits,
)
from repro.core import ConfigurationError, RingConfiguration
from repro.homomorphisms import XOR_UNIFORM, start_sync_construction
from repro.sync import WakeupSchedule


def ring(n: int) -> RingConfiguration:
    return RingConfiguration.oriented((0,) * n)


def random_schedule(n: int, seed: int) -> WakeupSchedule:
    rng = random.Random(seed)
    times = [0]
    for _ in range(n - 1):
        times.append(times[-1] + rng.choice((-1, 0, 1)))
    while abs(times[-1] - times[0]) > 1:
        times[-1] += 1 if times[-1] < times[0] else -1
    return WakeupSchedule.from_times(times)


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16, 31])
    def test_simultaneous(self, n):
        result = synchronize_start_bits(ring(n), WakeupSchedule.simultaneous(n))
        assert len(set(result.halt_times)) == 1
        assert len(set(result.outputs)) == 1

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_exhaustive_small_schedules(self, n):
        for times in itertools.product(range(3), repeat=n):
            if min(times) != 0:
                continue
            schedule = WakeupSchedule(tuple(times))
            if not schedule.is_realizable():
                continue
            result = synchronize_start_bits(ring(n), schedule)
            assert len(set(result.halt_times)) == 1

    @pytest.mark.parametrize("n", [9, 16, 27])
    def test_random_schedules(self, n):
        for seed in range(5):
            result = synchronize_start_bits(ring(n), random_schedule(n, seed))
            assert len(set(result.halt_times)) == 1

    def test_nonoriented_ring(self):
        config = RingConfiguration.random(9, random.Random(4))
        result = synchronize_start_bits(config, random_schedule(9, 7))
        assert len(set(result.halt_times)) == 1

    def test_adversarial_d0l_schedule(self):
        omega = XOR_UNIFORM.iterate("0011", 2)
        schedule = WakeupSchedule.from_bits(omega)
        result = synchronize_start_bits(ring(len(omega)), schedule)
        assert len(set(result.halt_times)) == 1

    def test_two_stage_schedule(self):
        construction = start_sync_construction(100)
        result = synchronize_start_bits(ring(100), construction.schedule)
        assert len(set(result.halt_times)) == 1

    def test_n1_rejected(self):
        with pytest.raises(ConfigurationError):
            synchronize_start_bits(ring(1), WakeupSchedule.simultaneous(1))


class TestBitEconomy:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_every_message_is_one_bit(self, n):
        result = synchronize_start_bits(ring(n), WakeupSchedule.simultaneous(n))
        assert result.stats.bits == result.stats.messages

    @pytest.mark.parametrize("n", [8, 16, 32, 64])
    def test_message_bound(self, n):
        for seed in range(4):
            result = synchronize_start_bits(ring(n), random_schedule(n, seed))
            assert result.stats.messages <= message_bound(n)
            assert result.cycles <= cycle_bound(n)

    def test_bits_beat_figure5(self):
        """Same job, fewer bits than Figure 5 (which ships counters)."""
        from repro.algorithms import synchronize_start

        n = 64
        schedule = random_schedule(n, 1)
        plain = synchronize_start(ring(n), schedule)
        frugal = synchronize_start_bits(ring(n), schedule)
        assert frugal.stats.bits < plain.stats.bits
        # ... at the price of 3n-cycle rounds instead of 2n.
        assert frugal.cycles >= plain.cycles

    def test_message_count_comparable_to_figure5(self):
        n = 32
        schedule = random_schedule(n, 2)
        frugal = synchronize_start_bits(ring(n), schedule)
        assert frugal.stats.messages <= 2 * fig5_bound(n)
