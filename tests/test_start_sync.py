"""§4.2.3 / Figure 5: start synchronization."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algorithms import synchronize_start
from repro.algorithms.start_sync import message_bound, run_with_random_schedule
from repro.core import ConfigurationError, RingConfiguration
from repro.homomorphisms import XOR_UNIFORM
from repro.sync import WakeupSchedule


def ring(n: int) -> RingConfiguration:
    return RingConfiguration.oriented((0,) * n)


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16, 31])
    def test_simultaneous_start(self, n):
        result = synchronize_start(ring(n), WakeupSchedule.simultaneous(n))
        assert len(set(result.halt_times)) == 1
        assert len(set(result.outputs)) == 1

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_exhaustive_small_schedules(self, n):
        """All realizable wake vectors with spread ≤ 2."""
        for times in itertools.product(range(3), repeat=n):
            if min(times) != 0:
                continue
            schedule = WakeupSchedule(tuple(times))
            if not schedule.is_realizable():
                continue
            result = synchronize_start(ring(n), schedule)
            assert len(set(result.halt_times)) == 1

    @pytest.mark.parametrize("n", [8, 16, 27])
    def test_random_schedules(self, n):
        for seed in range(5):
            _schedule, result = run_with_random_schedule(ring(n), seed)
            assert len(set(result.halt_times)) == 1

    def test_nonoriented_ring(self):
        """Start synchronization never looks at orientations."""
        config = RingConfiguration.random(9, random.Random(1))
        schedule = WakeupSchedule.from_bits("110100101")
        result = synchronize_start(config, schedule)
        assert len(set(result.halt_times)) == 1

    def test_unrealizable_schedule_still_synchronizes(self):
        """Messages wake sleepers early, fixing any schedule."""
        n = 6
        schedule = WakeupSchedule((0, 0, 0, 9, 9, 9))
        result = synchronize_start(ring(n), schedule)
        assert len(set(result.halt_times)) == 1

    def test_adversary_string_schedule(self):
        """The §6.3.3 D0L schedule: synchronization still succeeds."""
        omega = XOR_UNIFORM.iterate("0011", 2)  # n = 36
        schedule = WakeupSchedule.from_bits(omega)
        result = synchronize_start(ring(len(omega)), schedule)
        assert len(set(result.halt_times)) == 1

    def test_n1_rejected(self):
        with pytest.raises(ConfigurationError):
            synchronize_start(ring(1), WakeupSchedule.simultaneous(1))


class TestComplexity:
    @pytest.mark.parametrize("n", [4, 8, 16, 32, 64])
    def test_message_bound_simultaneous(self, n):
        result = synchronize_start(ring(n), WakeupSchedule.simultaneous(n))
        assert result.stats.messages <= message_bound(n)

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_message_bound_random(self, n):
        for seed in range(5):
            _schedule, result = run_with_random_schedule(ring(n), seed)
            assert result.stats.messages <= message_bound(n)

    def test_adversary_string_within_bound(self):
        omega = XOR_UNIFORM.iterate("0011", 3)  # n = 108
        n = len(omega)
        schedule = WakeupSchedule.from_bits(omega)
        result = synchronize_start(ring(n), schedule)
        assert result.stats.messages <= message_bound(n)

    def test_adversary_string_forces_traffic(self):
        """The §6.3.3 schedule is expensive: measured ≥ the Σβ/2 bound."""
        from repro.lowerbounds import start_sync_instance

        instance = start_sync_instance(3)
        schedule = instance.schedule
        result = synchronize_start(ring(instance.n), schedule)
        assert result.stats.messages >= instance.message_lower_bound()
