"""Golden structural digests: the spec-identity regression net.

A :class:`RunSpec`'s cache key is ``sha256(code_version + structural
digest)``; ``code_version`` rotates with every source edit by design, so
the part of spec identity that must stay stable PR over PR is
:meth:`RunSpec.structural_digest` — a pure function of the spec's
canonical field serialization.  If any value below changes, every cache
entry, recorded fuzz case, and cross-session artifact keyed by that spec
shape is silently orphaned: that is a breaking change and must be
deliberate (update the constant *and* say so in the PR).

The pinned set covers every engine (sync, sync-batch, async,
async-synchronized) and every spec knob that feeds the digest: params,
schedulers and seeds, fault profiles, wakeup schedules, budgets,
keep_log/record, oriented and unoriented rings.  All specs here are
static-ring — the shapes that existed before the topology layer — so
this test is also the proof that adding ``topology``/``message_mode``
did not move a single pre-existing cache slot.
"""

from __future__ import annotations

import random

from repro.core.ring import RingConfiguration
from repro.runtime.spec import RunSpec
from repro.topology import TopologySpec

#: (name -> structural digest) — update only on a deliberate format break.
GOLDEN = {
    "sync_and_sync": "f18b13016c0f86981fb45e5b1a5c7df7aaac901760cbed9f5017be4906566785",
    "sync_and_batch": "586e53cad8a442039f3950d4050dfea1157d631667444f50e0c858a23d728fa5",
    "sync_and_unoriented": "cb85f66a27eb80c07abb9c9f2b6bfb7b98666d9a1bea768dd68c55a0c0d9829e",
    "fig2_sync": "fc9a461ea92383b76d9ef83b98e91eb2a2bba4bad7357ced315792e82096ba4c",
    "fig2_batch": "0c0525fdce5f7838977068ab60d7931b4d973af0267caccdc65c95fae32b7a0c",
    "fig2_uni_sync": "6a9193142612dee59e133f2eaec935d1295d8ef7d4af578dca6dbdfcf5ebf985",
    "quasi_orientation_batch": "d53235c81b727526b284b3a3901671f09631f52babaf649218699e537de71190",
    "start_sync_wakeup": "8dc9c792aba43fdd378784796ad9fc7bfd582c392d7839af02571471db07b4b1",
    "start_sync_batch": "5f4d7bd3e7dea2cbddf6a1311cf459672a47f509d161254fa9d826a722d8e12c",
    "chang_roberts_sync_batch": "61b81056d163f61e94cac8dedbb89dd222234516e41cab564780e92c4274649e",
    "sync_and_record": "00de0014790cf96620d2ef7a3605d4989db387a0f53de5c82bb3a5a768467e42",
    "sync_and_keep_log": "dbc9611bc6f6df770a12edadc81b3662ed5e938b95f896e1b72072f747ba0113",
    "sync_and_budget": "c5b6ee0de3d10827656fe56f67f885d08085c0b9a2241fe67702a9f16d427628",
    "async_input_distribution": "9563247036c7e0c9ffe15b749b2f50149d97689561ceaf769f711aba668d461d",
    "async_input_distribution_oriented": "2d0219889908558d0cc09ea75916e23f9b677f6a40dfc5c1a1e8dca0c1913e4d",
    "async_and_random_scheduler": "dfb27bab9ab024b6d061507edfaf76b61ec01adcb7aaff64b473e59d67f9ff5f",
    "async_orientation": "6d39e56f40987e469705e16bcda49600d0bcd7af8cbb4e059e3fb2341e0b5d15",
    "async_chang_roberts_faults": "d97108cd78682733c341d0720d434a6a600a55d35fa1582c44a3436a947dc00f",
    "async_franklin": "6de9629c4c2a6a8ff508c80a1d6dfcc7c05449b8d13f80a8c9300615f3854fc9",
    "async_synchronized": "fe295d8a5f6ace7ef5d9dfa0e5a3622b34415df56c58e2ef3dcea00bf9d5bae3",
}


def _ring(n: int, seed: int = 0, oriented: bool = True) -> RingConfiguration:
    return RingConfiguration.random(n, random.Random(seed), oriented=oriented)


def _labeled(n: int) -> RingConfiguration:
    return RingConfiguration.oriented(tuple(range(1, n + 1)))


def golden_specs() -> dict:
    """The pinned spec set, rebuilt fresh (same coordinates every run)."""
    return {
        "sync_and_sync": RunSpec.make(
            engine="sync", ring=_ring(8), algorithm="sync-and"
        ),
        "sync_and_batch": RunSpec.make(
            engine="sync-batch", ring=_ring(8), algorithm="sync-and"
        ),
        "sync_and_unoriented": RunSpec.make(
            engine="sync", ring=_ring(9, 3, oriented=False), algorithm="sync-and"
        ),
        "fig2_sync": RunSpec.make(
            engine="sync", ring=_ring(8, 1), algorithm="fig2-input-distribution"
        ),
        "fig2_batch": RunSpec.make(
            engine="sync-batch", ring=_ring(8, 1), algorithm="fig2-input-distribution"
        ),
        "fig2_uni_sync": RunSpec.make(
            engine="sync", ring=_ring(8, 1), algorithm="fig2-unidirectional"
        ),
        "quasi_orientation_batch": RunSpec.make(
            engine="sync-batch",
            ring=_ring(7, 2, oriented=False),
            algorithm="quasi-orientation",
        ),
        "start_sync_wakeup": RunSpec.make(
            engine="sync",
            ring=RingConfiguration.oriented((0,) * 6),
            algorithm="start-sync",
            wakeup=(0, 2, 1, 3, 0, 2),
        ),
        "start_sync_batch": RunSpec.make(
            engine="sync-batch",
            ring=RingConfiguration.oriented((0,) * 6),
            algorithm="start-sync",
            wakeup=(0, 2, 1, 3, 0, 2),
        ),
        "chang_roberts_sync_batch": RunSpec.make(
            engine="sync-batch", ring=_labeled(8), algorithm="chang-roberts-sync"
        ),
        "sync_and_record": RunSpec.make(
            engine="sync", ring=_ring(8), algorithm="sync-and", record=True
        ),
        "sync_and_keep_log": RunSpec.make(
            engine="sync", ring=_ring(8), algorithm="sync-and", keep_log=True
        ),
        "sync_and_budget": RunSpec.make(
            engine="sync", ring=_ring(8), algorithm="sync-and", budget=10_000
        ),
        "async_input_distribution": RunSpec.make(
            engine="async",
            ring=_ring(7, 4, oriented=False),
            algorithm="input-distribution",
            scheduler="round-robin",
        ),
        "async_input_distribution_oriented": RunSpec.make(
            engine="async",
            ring=_ring(7, 4),
            algorithm="input-distribution",
            params={"assume_oriented": True},
            scheduler="round-robin",
        ),
        "async_and_random_scheduler": RunSpec.make(
            engine="async",
            ring=_ring(6, 5, oriented=False),
            algorithm="and",
            scheduler="random",
            scheduler_seed=11,
        ),
        "async_orientation": RunSpec.make(
            engine="async",
            ring=_ring(7, 6, oriented=False),
            algorithm="orientation",
            scheduler="round-robin",
        ),
        "async_chang_roberts_faults": RunSpec.make(
            engine="async",
            ring=_labeled(6),
            algorithm="chang-roberts",
            scheduler="round-robin",
            fault_profile="drop",
            fault_seed=3,
            fault_horizon=32,
        ),
        "async_franklin": RunSpec.make(
            engine="async", ring=_labeled(6), algorithm="franklin", scheduler="round-robin"
        ),
        "async_synchronized": RunSpec.make(
            engine="async-synchronized",
            ring=_ring(7, 4),
            algorithm="input-distribution",
            params={"assume_oriented": True},
        ),
    }


class TestGoldenDigests:
    def test_every_golden_digest_matches(self):
        specs = golden_specs()
        assert specs.keys() == GOLDEN.keys()
        mismatches = {
            name: (spec.structural_digest(), GOLDEN[name])
            for name, spec in specs.items()
            if spec.structural_digest() != GOLDEN[name]
        }
        assert not mismatches, (
            "structural digests moved — a spec-format break; see module "
            f"docstring before repinning: {mismatches!r}"
        )

    def test_digests_are_pairwise_distinct(self):
        assert len(set(GOLDEN.values())) == len(GOLDEN)

    def test_digest_composes_code_version_and_structure(self):
        """The cache key is code_version x structure — and only that."""
        import hashlib

        from repro.runtime.cache import code_version

        spec = golden_specs()["sync_and_sync"]
        expected = hashlib.sha256(
            (code_version() + spec.structural_digest()).encode()
        ).hexdigest()
        assert spec.digest() == expected


class TestTopologyFieldsAreDigestNeutral:
    """The new fields must not perturb any pre-existing spec identity."""

    def test_canonical_omits_defaults(self):
        spec = golden_specs()["sync_and_sync"]
        keys = {key for key, _ in spec.canonical()}
        assert "topology" not in keys
        assert "message_mode" not in keys

    def test_explicit_defaults_equal_omitted(self):
        base = golden_specs()["sync_and_sync"]
        explicit = base.with_(topology=None, message_mode="plain")
        assert explicit.structural_digest() == base.structural_digest()

    def test_non_default_values_do_change_the_digest(self):
        base = golden_specs()["sync_and_sync"]
        dynamic = base.with_(
            topology=TopologySpec(kind="dynamic-ring", seed=7, path_rate=0.3)
        )
        oblivious = base.with_(message_mode="oblivious")
        digests = {
            base.structural_digest(),
            dynamic.structural_digest(),
            oblivious.structural_digest(),
        }
        assert len(digests) == 3
