"""§7.2: two-stage constructions for arbitrary ring sizes."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError, symmetry_index_set
from repro.core.strings import cyclic_occurrences, distinct_cyclic_substrings, is_palindrome
from repro.homomorphisms import (
    orientation_construction,
    prefix_xor_orientation,
    start_sync_construction,
)


class TestPrefixXor:
    def test_simple(self):
        assert prefix_xor_orientation("1100") == (1, 0, 0, 0)

    def test_needs_even_ones(self):
        with pytest.raises(ConfigurationError):
            prefix_xor_orientation("100")

    def test_recurrence_closes(self):
        omega = "110110"
        bits = prefix_xor_orientation(omega)
        n = len(omega)
        for i in range(n):
            assert bits[i] == bits[i - 1] ^ int(omega[i])


class TestOrientationConstruction:
    @pytest.mark.parametrize("n", [501, 999, 2001, 5001])
    def test_valid(self, n):
        oc = orientation_construction(n)
        assert oc.n == n
        assert len(oc.omega) == n
        assert oc.omega.count("1") % 2 == 0
        assert oc.ring_a.n == n and oc.ring_b.n == n

    @pytest.mark.parametrize("n", [501, 999, 2001])
    def test_rings_are_complements(self, n):
        oc = orientation_construction(n)
        assert oc.ring_b.orientations == tuple(1 - b for b in oc.ring_a.orientations)

    @pytest.mark.parametrize("n", [501, 999])
    def test_witness_pair(self, n):
        """The palindrome center and its neighbor share a Θ(n)-deep
        neighborhood inside D^a, yet have opposite orientations."""
        oc = orientation_construction(n)
        a, b = oc.pair_positions
        assert oc.ring_a.orientations[a] != oc.ring_a.orientations[b]
        assert oc.witness_radius >= n // 5
        r = oc.witness_radius
        assert oc.ring_a.neighborhood(a, r) == oc.ring_a.neighborhood(b, r)
        assert oc.ring_a.neighborhood(a, r + 1) != oc.ring_a.neighborhood(b, r + 1)

    @pytest.mark.parametrize("n", [501, 999])
    def test_cross_ring_equality_is_shallower(self, n):
        """Deviation note: the paper's four-way identity only holds to the
        alternating-run radius Θ(√n) across D^a/D^b."""
        oc = orientation_construction(n)
        a, _b = oc.pair_positions
        small = int(n**0.5 / 8)
        assert oc.ring_a.neighborhood(a, small) == oc.ring_b.neighborhood(a, small)
        assert oc.ring_a.neighborhood(a, oc.witness_radius) != oc.ring_b.neighborhood(
            a, oc.witness_radius
        )

    def test_palindromic_block(self):
        oc = orientation_construction(999)
        center = oc.palindrome_center
        assert oc.omega[center] == "1"
        # A generous window around the center reads the same both ways.
        radius = oc.witness_radius
        window = "".join(
            oc.omega[(center + d) % oc.n] for d in range(-radius, radius + 1)
        )
        assert is_palindrome(window)

    def test_even_rejected(self):
        with pytest.raises(ConfigurationError):
            orientation_construction(1000)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            orientation_construction(9)

    def test_block_sizes_positive_and_odd_s(self):
        oc = orientation_construction(2001)
        assert oc.r > 0 and oc.s > 0
        assert oc.s % 2 == 1  # keeps the palindrome center a one
        assert oc.r * oc.p + oc.s * oc.q == 2001

    @pytest.mark.parametrize("n", [999, 3001])
    def test_repetitive_in_the_large(self, n):
        """Corollary 7.7: factors of length ≥ block size occur Ω(n/|σ|) times."""
        oc = orientation_construction(n)
        block = max(oc.r, oc.s)
        length = 2 * block
        counts = [
            cyclic_occurrences(sigma, oc.omega)
            for sigma in distinct_cyclic_substrings(oc.omega, length)
        ]
        assert min(counts) >= n / (60 * length)

    def test_joint_symmetry_index(self):
        oc = orientation_construction(501)
        for k in (0, 1, 2):
            joint = symmetry_index_set([oc.ring_a, oc.ring_b], k)
            assert joint >= 2 * 501 / (60 * (2 * k + 1))


class TestStartSyncConstruction:
    @pytest.mark.parametrize("n", [100, 346, 1000, 2002])
    def test_valid(self, n):
        sc = start_sync_construction(n)
        assert sc.n == n
        assert sc.omega.count("1") == n // 2  # balanced walk
        assert sc.schedule.n == n
        assert sc.schedule.is_realizable()

    def test_block_identities(self):
        sc = start_sync_construction(1000)
        m = 500
        assert sc.r0 * sc.p + sc.s0 * sc.q == m
        assert sc.r1 * sc.p + sc.s1 * sc.q == m
        assert sc.r1 == sc.r0 + sc.q and sc.s1 == sc.s0 - sc.p

    def test_odd_rejected(self):
        with pytest.raises(ConfigurationError):
            start_sync_construction(999)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            start_sync_construction(4)

    def test_dense_range(self):
        """Every even n ≥ 100 in a range succeeds (no parameter gaps)."""
        for n in range(100, 260, 2):
            sc = start_sync_construction(n)
            assert sc.n == n

    def test_schedule_spread_is_order_sqrt_n(self):
        """Wake times vary by Θ(√n): the adversary staggers maximally."""
        import math

        sc = start_sync_construction(4000)
        assert sc.schedule.spread >= math.sqrt(4000) / 2
