"""Cyclic-string utilities (repro.core.strings)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.strings import (
    canonical_bracelet,
    canonical_necklace,
    complement,
    cyclic_occurrences,
    cyclic_substrings,
    distinct_cyclic_substrings,
    is_palindrome,
    longest_palindrome_centered_at,
    minimal_rotation,
    occurs_cyclically,
    parse_binary,
    reverse_complement,
    rotate,
    rotations,
    smallest_period,
    to_binary,
)

binary = st.text(alphabet="01", min_size=1, max_size=24)


class TestRotate:
    def test_basic(self):
        assert rotate("abcd", 1) == "bcda"
        assert rotate("abcd", 0) == "abcd"
        assert rotate("abcd", 4) == "abcd"

    def test_negative(self):
        assert rotate("abcd", -1) == "dabc"

    def test_empty(self):
        assert rotate("", 3) == ""

    @given(binary, st.integers(-50, 50))
    def test_rotation_preserves_multiset(self, word, shift):
        assert sorted(rotate(word, shift)) == sorted(word)

    @given(binary, st.integers(0, 50), st.integers(0, 50))
    def test_rotation_composes(self, word, a, b):
        assert rotate(rotate(word, a), b) == rotate(word, a + b)

    def test_rotations_count(self):
        assert len(list(rotations("0110"))) == 4


class TestCyclicOccurrences:
    def test_simple(self):
        assert cyclic_occurrences("01", "0101") == 2
        assert cyclic_occurrences("10", "0101") == 2

    def test_wraparound(self):
        # "11" occurs wrapping around in "10...01".
        assert cyclic_occurrences("11", "1001") == 1

    def test_full_word(self):
        assert cyclic_occurrences("0101", "0101") == 2  # two cyclic alignments

    def test_longer_than_word(self):
        assert cyclic_occurrences("00000", "0001") == 0

    def test_empty_pattern(self):
        assert cyclic_occurrences("", "0101") == 4

    def test_all_same(self):
        assert cyclic_occurrences("1", "1111") == 4
        assert cyclic_occurrences("11", "1111") == 4

    @given(binary, st.integers(0, 23))
    def test_matches_bruteforce(self, word, start):
        length = min(len(word), 1 + start % len(word))
        pattern = (word + word)[start % len(word) :][:length]
        brute = sum(
            1
            for i in range(len(word))
            if all(word[(i + j) % len(word)] == pattern[j] for j in range(length))
        )
        assert cyclic_occurrences(pattern, word) == brute

    @given(binary, st.integers(1, 50))
    def test_invariant_under_rotation(self, word, shift):
        for length in (1, 2):
            if length > len(word):
                continue
            for pattern in distinct_cyclic_substrings(word, length):
                assert cyclic_occurrences(pattern, word) == cyclic_occurrences(
                    pattern, rotate(word, shift)
                )

    def test_occurs_cyclically(self):
        assert occurs_cyclically("11", "1001")
        assert not occurs_cyclically("111", "1001")


class TestCyclicSubstrings:
    def test_enumeration(self):
        assert list(cyclic_substrings("011", 2)) == ["01", "11", "10"]

    def test_length_equals_n(self):
        assert list(cyclic_substrings("011", 3)) == ["011", "110", "101"]

    def test_too_long_raises(self):
        with pytest.raises(ValueError):
            list(cyclic_substrings("011", 4))

    @given(binary, st.integers(1, 24))
    def test_counts(self, word, length):
        if length > len(word):
            return
        subs = list(cyclic_substrings(word, length))
        assert len(subs) == len(word)
        total = sum(cyclic_occurrences(s, word) for s in set(subs))
        assert total == len(word)


class TestMinimalRotation:
    def test_known(self):
        assert minimal_rotation("bca") == "abc"
        assert minimal_rotation("1101") == "0111"
        assert minimal_rotation("0000") == "0000"

    @given(binary)
    def test_is_a_rotation(self, word):
        assert minimal_rotation(word) in set(rotations(word))

    @given(binary)
    def test_is_minimal(self, word):
        assert minimal_rotation(word) == min(rotations(word))

    @given(binary, st.integers(0, 40))
    def test_rotation_invariant(self, word, shift):
        assert minimal_rotation(word) == minimal_rotation(rotate(word, shift))

    @given(binary)
    def test_bracelet_reversal_invariant(self, word):
        assert canonical_bracelet(word) == canonical_bracelet(word[::-1])

    @given(binary)
    def test_necklace_vs_bracelet(self, word):
        assert canonical_bracelet(word) <= canonical_necklace(word)


class TestPalindromes:
    def test_is_palindrome(self):
        assert is_palindrome("")
        assert is_palindrome("0")
        assert is_palindrome("010")
        assert not is_palindrome("011")

    def test_longest_centered(self):
        assert longest_palindrome_centered_at("00100", 2) == "00100"
        assert longest_palindrome_centered_at("10100", 2) == "010"

    def test_center_out_of_range(self):
        with pytest.raises(ValueError):
            longest_palindrome_centered_at("010", 5)

    @given(binary, st.integers(0, 23))
    def test_result_is_palindrome(self, word, center):
        center %= len(word)
        pal = longest_palindrome_centered_at(word, center)
        assert is_palindrome(pal)
        assert word[center] == pal[len(pal) // 2]


class TestComplementAndPeriod:
    @given(binary)
    def test_complement_involution(self, word):
        assert complement(complement(word)) == word

    @given(binary)
    def test_reverse_complement(self, word):
        assert reverse_complement(word) == complement(word)[::-1]
        assert reverse_complement(reverse_complement(word)) == word

    def test_smallest_period(self):
        assert smallest_period("010101") == 2
        assert smallest_period("0110") == 4
        assert smallest_period("111") == 1

    @given(binary)
    def test_period_divides(self, word):
        p = smallest_period(word)
        assert len(word) % p == 0
        assert word == word[:p] * (len(word) // p)


class TestBinaryConversion:
    def test_roundtrip(self):
        assert to_binary(parse_binary("0110")) == "0110"

    def test_parse_rejects(self):
        with pytest.raises(ValueError):
            parse_binary("012")

    def test_to_binary_rejects(self):
        with pytest.raises(ValueError):
            to_binary([0, 2])
