"""Straightforward reference implementations of both engines.

These are the *semantic spec* the optimized engines in
``repro.asynch.simulator`` / ``repro.sync.simulator`` must match: the
seed engines' obviously-correct structure (re-sort the pending channels
every event, rebuild every per-cycle structure from scratch, scan
``all(halted)``) with the documented timing conventions applied —

* asynchronous start-event sends are stamped ``send_time = 0`` and the
  delivery clock counts actual deliveries only — drops at halted
  processors are tallied in ``stats.dropped`` and do not tick the clock;
* the one-message-per-port-per-cycle rule applies to waking processors
  exactly as to awake ones.

``tests/test_trace_equivalence.py`` asserts byte-identical traces between
these and the optimized engines on randomized rings and schedules.  Keep
these slow and simple: their value is being obviously right.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.asynch.process import AsyncFactory, Context
from repro.asynch.schedulers import ChannelId, RoundRobinScheduler, Scheduler
from repro.core.errors import NonTerminationError, SimulationError
from repro.core.message import Envelope, Port
from repro.core.ring import RingConfiguration
from repro.core.tracing import RunResult, TraceStats
from repro.sync.process import ABSENT, In, Out, ProcessGen, SyncProcess
from repro.sync.simulator import ProcessFactory, default_cycle_budget
from repro.sync.wakeup import WakeupSchedule
from repro.asynch.simulator import default_event_budget


class _RefEngine:
    """Reference counterpart of the shared async machinery."""

    def __init__(self, config: RingConfiguration, factory: AsyncFactory, keep_log: bool):
        self.config = config
        self.n = config.n
        self.processes = [factory(config.inputs[i], config.n) for i in range(config.n)]
        self.halted = [False] * self.n
        self.outputs: List[Any] = [None] * self.n
        self.stats = TraceStats(keep_log=keep_log)

    def invoke_start(self, i: int) -> List[Tuple[Port, Any]]:
        ctx = Context()
        self.processes[i].on_start(ctx)
        return self._absorb(i, ctx)

    def invoke_message(self, i: int, port: Port, payload: Any) -> List[Tuple[Port, Any]]:
        ctx = Context()
        self.processes[i].on_message(ctx, port, payload)
        return self._absorb(i, ctx)

    def _absorb(self, i: int, ctx: Context) -> List[Tuple[Port, Any]]:
        if ctx._halted:
            self.halted[i] = True
            self.outputs[i] = ctx._output
        return ctx._sends

    def record(self, sender: int, out_port: Port, payload: Any, time: int):
        receiver, in_port, step = self.config.route(sender, out_port)
        self.stats.record(
            Envelope(
                sender=sender,
                receiver=receiver,
                out_port=out_port,
                in_port=in_port,
                payload=payload,
                send_time=time,
            )
        )
        return receiver, in_port, step

    def check_all_halted(self) -> None:
        if not all(self.halted):
            laggards = [i for i in range(self.n) if not self.halted[i]]
            raise SimulationError(
                f"deadlock: no messages pending but processors {laggards} "
                "have not halted"
            )


def run_asynchronous_reference(
    config: RingConfiguration,
    factory: AsyncFactory,
    scheduler: Optional[Scheduler] = None,
    max_events: Optional[int] = None,
    keep_log: bool = False,
) -> RunResult:
    """Seed-style general async engine: re-sorts pending channels per event."""
    engine = _RefEngine(config, factory, keep_log)
    n = config.n
    budget = max_events if max_events is not None else default_event_budget(n)
    scheduler = scheduler or RoundRobinScheduler()
    queues: Dict[ChannelId, Deque[Tuple[Port, Any]]] = {}

    def dispatch(sender: int, sends: List[Tuple[Port, Any]], time: int) -> None:
        for out_port, payload in sends:
            receiver, in_port, step = engine.record(sender, out_port, payload, time)
            queues.setdefault((sender, receiver, step), deque()).append(
                (in_port, payload)
            )

    for i in range(n):
        dispatch(i, engine.invoke_start(i), 0)

    clock = 0
    events = 0
    while True:
        pending = sorted(cid for cid, queue in queues.items() if queue)
        if not pending:
            break
        events += 1
        if events > budget:
            raise NonTerminationError(f"event budget {budget} exhausted")
        cid = scheduler.choose(tuple(pending))
        if cid not in queues or not queues[cid]:
            raise SimulationError(
                f"{type(scheduler).__name__} chose channel {cid!r}, which has "
                "no pending message (schedulers must return one of the "
                "channels in the pending view)"
            )
        in_port, payload = queues[cid].popleft()
        _, receiver, _ = cid
        if engine.halted[receiver]:
            engine.stats.dropped += 1
            continue
        engine.stats.delivered += 1
        clock += 1
        dispatch(receiver, engine.invoke_message(receiver, in_port, payload), clock)

    engine.check_all_halted()
    return RunResult(outputs=tuple(engine.outputs), stats=engine.stats, cycles=None)


def run_async_synchronized_reference(
    config: RingConfiguration,
    factory: AsyncFactory,
    max_cycles: Optional[int] = None,
    keep_log: bool = False,
) -> RunResult:
    """Seed-style Theorem 5.1 adversary: rebuilds the inflight store per cycle."""
    engine = _RefEngine(config, factory, keep_log)
    n = config.n
    budget = max_cycles if max_cycles is not None else 8 * n + 64

    inflight: List[Dict[Port, List[Any]]] = [
        {Port.LEFT: [], Port.RIGHT: []} for _ in range(n)
    ]

    def dispatch(sender: int, sends: List[Tuple[Port, Any]], cycle: int) -> None:
        for out_port, payload in sends:
            receiver, in_port, _ = engine.record(sender, out_port, payload, cycle)
            inflight[receiver][in_port].append(payload)

    cycle = 0
    for i in range(n):
        dispatch(i, engine.invoke_start(i), cycle)

    while any(batch[Port.LEFT] or batch[Port.RIGHT] for batch in inflight):
        cycle += 1
        if cycle > budget:
            raise NonTerminationError(f"cycle budget {budget} exhausted")
        arriving, inflight = inflight, [
            {Port.LEFT: [], Port.RIGHT: []} for _ in range(n)
        ]
        for i in range(n):
            for port in (Port.LEFT, Port.RIGHT):
                for payload in arriving[i][port]:
                    if engine.halted[i]:
                        engine.stats.dropped += 1
                        continue
                    engine.stats.delivered += 1
                    dispatch(i, engine.invoke_message(i, port, payload), cycle)

    engine.check_all_halted()
    return RunResult(outputs=tuple(engine.outputs), stats=engine.stats, cycles=cycle)


def run_synchronous_reference(
    config: RingConfiguration,
    factory: ProcessFactory,
    wakeup: Optional[WakeupSchedule] = None,
    max_cycles: Optional[int] = None,
    keep_log: bool = False,
) -> RunResult:
    """Seed-style synchronous engine: fresh structures every cycle."""
    n = config.n
    wakeup = wakeup or WakeupSchedule.simultaneous(n)
    if wakeup.n != n:
        raise SimulationError(f"schedule covers {wakeup.n} processors, ring has {n}")

    processes: List[SyncProcess] = [factory(config.inputs[i], n) for i in range(n)]
    gens: List[Optional[ProcessGen]] = [None] * n
    outputs: List[Any] = [None] * n
    halted = [False] * n
    halt_times = [0] * n
    wake_time = list(wakeup.times)
    wake_messages: List[List] = [[] for _ in range(n)]
    last_in: List[In] = [In() for _ in range(n)]
    stats = TraceStats(keep_log=keep_log)
    budget = max_cycles if max_cycles is not None else default_cycle_budget(n)

    cycle = 0
    while not all(halted):
        # Budget = number of permitted cycles (0..budget-1), matching the
        # optimized engine and the async-synchronized convention.
        if cycle >= budget:
            laggards = [i for i in range(n) if not halted[i]]
            raise NonTerminationError(
                f"cycle budget {budget} exhausted; still running: {laggards}"
            )

        emissions: List[Tuple[int, Out]] = []
        for i in range(n):
            if halted[i] or wake_time[i] > cycle:
                continue
            gen = gens[i]
            try:
                if gen is None:
                    proc = processes[i]
                    proc.wake_inbox = list(wake_messages[i])
                    proc.woke_spontaneously = not wake_messages[i]
                    gen = proc.run()
                    gens[i] = gen
                    out = next(gen)
                else:
                    out = gen.send(last_in[i])
            except StopIteration as stop:
                halted[i] = True
                outputs[i] = stop.value
                halt_times[i] = cycle
                continue
            if not isinstance(out, Out):
                raise SimulationError(
                    f"processor yielded {out!r}; processes must yield Out(...)"
                )
            emissions.append((i, out))

        arriving: List[Dict[Port, Any]] = [dict() for _ in range(n)]
        for sender, out in emissions:
            for port, payload in out.sends():
                receiver, in_port = config.arrival_port(sender, port)
                stats.record(
                    Envelope(
                        sender=sender,
                        receiver=receiver,
                        out_port=port,
                        in_port=in_port,
                        payload=payload,
                        send_time=cycle,
                    )
                )
                if halted[receiver]:
                    continue
                if gens[receiver] is None and wake_time[receiver] > cycle:
                    if any(p is in_port for p, _ in wake_messages[receiver]):
                        raise SimulationError(
                            f"two messages on one port in one cycle at {receiver}"
                        )
                    wake_messages[receiver].append((in_port, payload))
                    wake_time[receiver] = cycle + 1
                    continue
                if in_port in arriving[receiver]:
                    raise SimulationError(
                        f"two messages on one port in one cycle at {receiver}"
                    )
                arriving[receiver][in_port] = payload

        for i in range(n):
            got = arriving[i]
            last_in[i] = In(
                left=got.get(Port.LEFT, ABSENT),
                right=got.get(Port.RIGHT, ABSENT),
            )

        cycle += 1

    return RunResult(
        outputs=tuple(outputs),
        stats=stats,
        cycles=max(halt_times) if halt_times else 0,
        halt_times=tuple(halt_times),
    )
