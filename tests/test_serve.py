"""End-to-end tests for ``repro.serve`` — the PR 8 tentpole.

Everything here exercises the real stack: a live asyncio HTTP server on
a background thread (:class:`ServerThread`), the stdlib blocking client,
and a shared :class:`SqliteResultCache`.  The acceptance criteria under
test, verbatim from the issue:

* a RunSpec batch submitted over HTTP returns results byte-identical
  (pickle-equal) to local ``Runner.run_specs`` on the same specs;
* warm cache entries are answered without executing anything;
* queue-full returns 429 with a Retry-After;
* per-run failures come back as per-run errors, never poison the cache,
  and never hide their batchmates' results.
"""

from __future__ import annotations

import http.client
import json
import pickle
from urllib.parse import urlsplit

import pytest

from repro.core import RingConfiguration
from repro.runtime import Runner, RunSpec, SqliteResultCache
from repro.serve import (
    ServeClientError,
    ServerQueueFull,
    ServerThread,
    check_health,
    fetch_stats,
    submit_specs,
)


def _spec(bits, engine="sync", **kwargs) -> RunSpec:
    return RunSpec.make(
        engine=engine,
        ring=RingConfiguration.oriented(tuple(bits)),
        algorithm="sync-and",
        **kwargs,
    )


def _raw_post(url: str, body: bytes, content_type="application/json"):
    """POST raw bytes to /runs, return (status, headers, body)."""
    parts = urlsplit(url)
    conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)
    try:
        conn.request("POST", "/runs", body, {"Content-Type": content_type})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


@pytest.fixture
def server(tmp_path):
    with ServerThread(cache=SqliteResultCache(tmp_path)) as srv:
        yield srv


class TestRoundTrip:
    def test_results_pickle_equal_to_local_runner(self, server, tmp_path):
        specs = [
            _spec((1, 1, 0, 1)),
            _spec((1, 1, 1, 1)),
            _spec((0, 1, 0, 1, 1), engine="sync-batch"),
            RunSpec.make(
                engine="async",
                ring=RingConfiguration.oriented((1, 1, 0, 1)),
                algorithm="and",
                scheduler="random",
                scheduler_seed=3,
            ),
        ]
        outcomes = submit_specs(server.url, specs)
        local = Runner().run_specs(specs)
        assert [o.status for o in outcomes] == ["done"] * len(specs)
        assert [o.index for o in outcomes] == list(range(len(specs)))
        for outcome, spec, expected in zip(outcomes, specs, local):
            assert outcome.digest == spec.digest()
            assert pickle.dumps(outcome.result) == pickle.dumps(expected)

    def test_warm_entries_answered_without_executing(self, server):
        specs = [_spec((1, 1, 0, 1)), _spec((1, 1, 1, 1))]
        first = submit_specs(server.url, specs)
        assert [o.status for o in first] == ["done", "done"]
        executed_after_first = server.gateway.runner.executed
        assert executed_after_first == 2

        second = submit_specs(server.url, specs)
        assert [o.status for o in second] == ["cached", "cached"]
        assert server.gateway.runner.executed == executed_after_first
        assert pickle.dumps(second[0].result) == pickle.dumps(first[0].result)

        stats = fetch_stats(server.url)
        assert stats["warm_hits"] == 2
        assert stats["completed"] == 2

    def test_in_batch_duplicates_execute_once(self, server):
        spec = _spec((1, 0, 1))
        outcomes = submit_specs(server.url, [spec, spec, spec])
        assert [o.status for o in outcomes] == ["done"] * 3
        assert server.gateway.runner.executed == 1
        payloads = {pickle.dumps(o.result) for o in outcomes}
        assert len(payloads) == 1

    def test_recorded_runs_stream_their_events(self, server):
        plain = _spec((1, 1, 0))
        recorded = _spec((1, 1, 0), record=True)
        outcomes = submit_specs(server.url, [plain, recorded])
        assert not outcomes[0].events
        assert outcomes[1].events
        for event in outcomes[1].events:
            assert isinstance(event, dict) and "kind" in event


class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self, tmp_path):
        specs = [_spec((1, 1, 0, 1)), _spec((1, 1, 1, 1)), _spec((1, 0, 0, 1))]
        with ServerThread(cache=SqliteResultCache(tmp_path), queue_limit=2) as srv:
            with pytest.raises(ServerQueueFull) as excinfo:
                submit_specs(srv.url, specs)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            # All-or-nothing: the rejected batch queued nothing.
            assert fetch_stats(srv.url)["queue"]["pending"] == 0
            assert fetch_stats(srv.url)["rejected"] == 1
            # A batch that fits is accepted afterwards.
            ok = submit_specs(srv.url, specs[:2])
            assert [o.status for o in ok] == ["done", "done"]

    def test_warm_specs_bypass_the_queue(self, tmp_path):
        """Backpressure counts cold specs only — warm answers always fit."""
        warm = [_spec((1, 1, 0, 1)), _spec((1, 1, 1, 1))]
        with ServerThread(cache=SqliteResultCache(tmp_path), queue_limit=2) as srv:
            submit_specs(srv.url, warm)  # populate the cache
            # 2 warm + 2 cold fits a limit of 2: only cold specs queue.
            batch = warm + [_spec((0, 0, 1)), _spec((0, 1, 1))]
            outcomes = submit_specs(srv.url, batch)
            assert [o.status for o in outcomes] == ["cached", "cached", "done", "done"]


class TestErrorIsolation:
    def test_failing_spec_reports_error_without_hiding_batchmates(self, server):
        good = _spec((1, 1, 0, 1))
        bad = _spec((1, 1, 1, 1), budget=1)  # NonTerminationError at run time
        tail = _spec((0, 1, 1))
        outcomes = submit_specs(server.url, [good, bad, tail])
        assert [o.status for o in outcomes] == ["done", "error", "done"]
        assert "NonTerminationError" in outcomes[1].error
        assert outcomes[1].result is None
        assert outcomes[0].ok and outcomes[2].ok

    def test_errors_are_never_cached(self, server):
        bad = _spec((1, 1, 1, 1), budget=1)
        first = submit_specs(server.url, [bad])
        second = submit_specs(server.url, [bad])
        # Still "error", not "cached": the failure never took the slot.
        assert first[0].status == "error"
        assert second[0].status == "error"
        assert server.gateway.runner.executed == 2
        assert fetch_stats(server.url)["failed"] == 2


class TestHttpSurface:
    def test_health_and_stats(self, server):
        assert check_health(server.url)
        stats = fetch_stats(server.url)
        assert stats["queue"]["limit"] == 256
        assert stats["cache"]["backend"] == "sqlite"
        assert stats["runner"]["jobs"] == 1

    def test_malformed_json_is_400(self, server):
        status, _, body = _raw_post(server.url, b"{not json")
        assert status == 400
        assert b"json" in body.lower()

    def test_invalid_spec_is_400_with_position(self, server):
        good = _spec((1, 1, 0)).to_json_dict()
        bad = dict(good)
        bad["engine"] = "warp-drive"
        payload = json.dumps({"specs": [good, bad]}).encode()
        status, _, body = _raw_post(server.url, payload)
        assert status == 400
        message = body.decode()
        assert "1" in message  # names the offending position
        # Nothing was admitted for the valid half.
        assert fetch_stats(server.url)["submitted"] == 0

    def test_specs_must_be_a_list(self, server):
        status, _, _ = _raw_post(server.url, json.dumps({"specs": "nope"}).encode())
        assert status == 400

    def test_unknown_path_and_method(self, server):
        parts = urlsplit(server.url)
        conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()
        conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)
        try:
            conn.request("DELETE", "/runs")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="http://host:port"):
            submit_specs("ftp://nope", [_spec((1, 0))])


class TestLifecycle:
    def test_cache_survives_server_restarts(self, tmp_path):
        spec = _spec((1, 1, 0, 1))
        with ServerThread(cache=SqliteResultCache(tmp_path)) as srv:
            assert submit_specs(srv.url, [spec])[0].status == "done"
        with ServerThread(cache=SqliteResultCache(tmp_path)) as srv:
            outcome = submit_specs(srv.url, [spec])[0]
            assert outcome.status == "cached"
            assert srv.gateway.runner.executed == 0

    def test_pool_path_matches_in_process(self, tmp_path):
        specs = [_spec((1, 1, 0, 1)), _spec((1, 1, 1, 1)), _spec((0, 1, 1))]
        with ServerThread(cache=SqliteResultCache(tmp_path / "a"), jobs=2) as srv:
            pooled = submit_specs(srv.url, specs)
        local = Runner().run_specs(specs)
        for outcome, expected in zip(pooled, local):
            assert pickle.dumps(outcome.result) == pickle.dumps(expected)
