"""The dynamic-counting benchmark suite: records, bounds, committed artifact."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf import (
    DYNAMIC_FILENAME,
    SCHEMA_VERSION,
    dynamic_workload_spec,
    measure_dynamic,
    render_dynamic_table,
    run_dynamic_bench,
    write_dynamic_bench,
)
from repro.runtime.spec import execute

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestWorkloads:
    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            dynamic_workload_spec("nope", 4)

    def test_specs_are_cache_stable(self):
        """Same (workload, n) must hash to the same slot run over run."""
        for name in ("dynamic_counting", "dynamic_counting_churn", "oblivious_counting"):
            assert (
                dynamic_workload_spec(name, 8).digest()
                == dynamic_workload_spec(name, 8).digest()
            )

    def test_dynamic_and_churn_specs_differ(self):
        assert dynamic_workload_spec("dynamic_counting", 8) != dynamic_workload_spec(
            "dynamic_counting_churn", 8
        )


class TestMeasure:
    def test_dynamic_counting_within_linear_bound(self):
        record = measure_dynamic("dynamic_counting", 8, repeats=1)
        assert record.within_bounds
        assert record.rounds <= 3 * 8
        assert not record.exact

    def test_oblivious_counting_exactly_2n(self):
        record = measure_dynamic("oblivious_counting", 16, repeats=1)
        assert record.exact
        assert record.within_bounds
        assert record.rounds == record.messages == record.bits == 32

    def test_measure_checks_outputs(self):
        """The suite re-verifies correctness, not just speed."""
        result = execute(dynamic_workload_spec("dynamic_counting", 6))
        assert all(out == 6 for out in result.outputs)


class TestSuite:
    def test_quick_run_and_table(self):
        records = run_dynamic_bench(quick=True, repeats=1)
        assert all(record.within_bounds for record in records)
        table = render_dynamic_table(records)
        for name in ("dynamic_counting", "oblivious_counting"):
            assert name in table

    def test_write_payload_schema(self, tmp_path):
        records = run_dynamic_bench(quick=True, repeats=1)
        target = tmp_path / "bench.json"
        written = write_dynamic_bench(records, target, quick=True)
        assert written == target
        payload = json.loads(target.read_text())
        assert payload["schema"] == SCHEMA_VERSION == 2
        assert payload["suite"] == "dynamic-counting"
        assert payload["bounds"]["ok"] is True
        assert payload["bounds"]["violations"] == []
        assert payload["bounds"]["max_rounds_per_n"]["oblivious_counting"] == 2.0


class TestCommittedArtifact:
    """The repo ships a full-grid BENCH_dynamic.json; it must validate."""

    @pytest.fixture()
    def payload(self):
        path = REPO_ROOT / DYNAMIC_FILENAME
        if not path.exists():
            pytest.skip(f"{DYNAMIC_FILENAME} not present")
        return json.loads(path.read_text())

    def test_schema_and_bounds(self, payload):
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["suite"] == "dynamic-counting"
        assert payload["bounds"]["ok"] is True
        assert payload["bounds"]["violations"] == []

    def test_records_respect_their_own_bounds(self, payload):
        assert payload["records"], "artifact has no records"
        for record in payload["records"]:
            assert record["within_bounds"] is True
            if record["exact"]:
                assert record["rounds"] == record["round_bound"]
                assert record["bits"] == record["message_bound"]
            else:
                assert record["rounds"] <= record["round_bound"]
                assert record["messages"] <= record["message_bound"]

    def test_linear_rounds_curve(self, payload):
        """The committed curve itself is linear: rounds/n stays bounded."""
        ratios = payload["bounds"]["max_rounds_per_n"]
        assert ratios["dynamic_counting"] <= 3.0
        assert ratios["oblivious_counting"] == 2.0
