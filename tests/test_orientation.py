"""§4.2.2 / Figure 4: quasi-orientation."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algorithms import orient_ring, quasi_orient
from repro.algorithms.orientation import cycle_bound, message_bound
from repro.core import ConfigurationError, RingConfiguration


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8])
    def test_exhaustive_orientations(self, n):
        """Every orientation vector of every small size quasi-orients."""
        for bits in itertools.product((0, 1), repeat=n):
            config = RingConfiguration((0,) * n, bits)
            switched, result = orient_ring(config)
            assert switched.is_quasi_oriented, bits
            if n % 2 == 1:
                assert switched.is_oriented, bits

    @pytest.mark.parametrize("n", [9, 15, 27, 51])
    def test_random_odd_orients(self, n):
        for seed in range(5):
            config = RingConfiguration.random(n, random.Random(seed))
            switched, _ = orient_ring(config)
            assert switched.is_oriented

    @pytest.mark.parametrize("n", [10, 16, 30])
    def test_random_even_quasi_orients(self, n):
        for seed in range(5):
            config = RingConfiguration.random(n, random.Random(seed))
            switched, _ = orient_ring(config)
            assert switched.is_quasi_oriented

    def test_already_oriented_stays(self):
        """An oriented ring is case A with everyone marked: nobody switches."""
        config = RingConfiguration.oriented([0] * 9)
        result = quasi_orient(config)
        assert all(bit == 0 for bit in result.outputs)

    def test_two_half_rings(self):
        """The Theorem 3.5 configuration ends alternating, not oriented."""
        config = RingConfiguration.two_half_rings(4)
        switched, _ = orient_ring(config)
        assert switched.is_quasi_oriented
        assert not switched.is_oriented  # symmetry forbids it

    def test_alternating_input(self):
        config = RingConfiguration.alternating([0] * 8)
        switched, _ = orient_ring(config)
        assert switched.is_quasi_oriented

    def test_outputs_are_bits(self):
        config = RingConfiguration.random(11, random.Random(3))
        result = quasi_orient(config)
        assert set(result.outputs) <= {0, 1}

    def test_n1_rejected(self):
        with pytest.raises(ConfigurationError):
            quasi_orient(RingConfiguration.oriented([0]))


class TestSymmetryObstruction:
    @pytest.mark.parametrize("half", [2, 3, 4, 5])
    def test_symmetric_pairs_get_equal_outputs(self, half):
        """Lemma 3.1 in action: mirror processors of Figure 1 decide alike."""
        config = RingConfiguration.two_half_rings(half)
        result = quasi_orient(config)
        n = config.n
        for i in range(half):
            assert result.outputs[i] == result.outputs[n - 1 - i]


class TestComplexity:
    @pytest.mark.parametrize("n", [4, 9, 16, 27, 64, 81])
    def test_message_bound(self, n):
        for seed in range(4):
            config = RingConfiguration.random(n, random.Random(seed))
            result = quasi_orient(config)
            assert result.stats.messages <= message_bound(n)

    @pytest.mark.parametrize("n", [4, 9, 16, 27, 64, 81])
    def test_cycle_bound(self, n):
        for seed in range(4):
            config = RingConfiguration.random(n, random.Random(seed))
            result = quasi_orient(config)
            assert result.cycles <= cycle_bound(n)

    def test_growth_subquadratic(self):
        from repro.analysis import best_shape

        ns, msgs = [], []
        for n in (16, 32, 64, 128, 256):
            config = RingConfiguration.random(n, random.Random(n))
            result = quasi_orient(config)
            ns.append(n)
            msgs.append(result.stats.messages)
        assert best_shape(ns, msgs) in ("nlogn", "linear")
