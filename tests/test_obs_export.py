"""The repro.obs exporters: JSONL round-trips, Chrome trace schema,
and stream → RunResult reconstruction.

The load-bearing properties: a written JSONL stream reads back equal
(payloads included, with non-JSON payloads degrading to a *stable*
:class:`OpaquePayload` that re-encodes identically); every Chrome trace
the exporter emits passes :func:`validate_chrome_trace` — including
duplicate-heavy fault runs, where each manufactured copy needs its own
flow-arrow start; and :func:`result_from_events` rebuilds enough of a
:class:`RunResult` from events alone to drive the space–time diagram.
"""

from __future__ import annotations

import json
import random

from repro.core.diagram import space_time_diagram
from repro.core.message import Port
from repro.core.ring import RingConfiguration
from repro.obs import (
    Event,
    OpaquePayload,
    chrome_trace,
    decode_value,
    encode_value,
    event_from_json,
    event_to_json,
    events_to_jsonl,
    read_events_jsonl,
    result_from_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.runtime.spec import RunSpec, execute


def recorded(spec: RunSpec):
    result = execute(spec.with_(record=True))
    assert result.events is not None
    return result, result.events


def sync_and_spec(n: int = 6) -> RunSpec:
    return RunSpec.make(
        engine="sync",
        ring=RingConfiguration.oriented((0,) + (1,) * (n - 1)),
        algorithm="sync-and",
        keep_log=True,
    )


def async_spec(seed: int = 4) -> RunSpec:
    ring = RingConfiguration.random(6, random.Random(seed), oriented=True)
    return RunSpec.make(
        engine="async",
        ring=ring,
        algorithm="input-distribution",
        params={"assume_oriented": True},
        scheduler="random",
        scheduler_seed=seed,
    )


def dup_fault_spec() -> RunSpec:
    labels = list(range(1, 6))
    random.Random(0).shuffle(labels)
    return RunSpec.make(
        engine="async",
        ring=RingConfiguration.oriented(tuple(labels)),
        algorithm="chang-roberts",
        scheduler="random",
        scheduler_seed=0,
        fault_profile="dup",
        fault_seed=1,
    )


class TestPayloadEncoding:
    def test_scalars_pass_through(self):
        for value in (None, True, 0, 1.5, "text"):
            assert decode_value(encode_value(value)) == value

    def test_containers_round_trip_exactly(self):
        value = {"k": (1, 2, [3, "x"]), "nested": {"a": (None, True)}}
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert isinstance(decoded["k"], tuple)
        assert isinstance(decoded["k"][2], list)

    def test_port_round_trips_as_port(self):
        assert decode_value(encode_value(Port.LEFT)) is Port.LEFT

    def test_opaque_payload_is_a_fixed_point(self):
        class Weird:
            def __repr__(self):
                return "Weird<7>"

        once = decode_value(encode_value(Weird()))
        assert once == OpaquePayload("Weird<7>")
        # Second round trip: re-encoding the opaque value is stable.
        twice = decode_value(encode_value(once))
        assert twice == once
        assert encode_value(once) == encode_value(twice)


class TestJsonlRoundTrip:
    def test_event_to_json_round_trips(self):
        event = Event(
            seq=3,
            kind="send",
            time=2,
            etime=1,
            proc=0,
            peer=1,
            port="right",
            payload=("tok", 5),
            bits=4,
            msg=7,
            detail="",
        )
        assert event_from_json(event_to_json(event)) == event

    def test_recorded_stream_round_trips_via_file(self, tmp_path):
        # Async halt payloads are RingView dataclasses, which degrade to
        # OpaquePayload on export — so the guarantee here is re-encode
        # stability: reading a file back and rewriting it is a no-op.
        _, events = recorded(async_spec())
        path = write_events_jsonl(events, tmp_path / "run.events.jsonl")
        read_back = read_events_jsonl(path)
        assert len(read_back) == len(events)
        assert events_to_jsonl(read_back) == path.read_text()
        # Everything except degraded payloads is preserved exactly.
        for original, returned in zip(events, read_back):
            if not isinstance(returned.payload, OpaquePayload):
                assert returned == original
            else:
                assert returned.payload.text == repr(original.payload)

    def test_jsonl_is_one_json_object_per_line(self):
        _, events = recorded(sync_and_spec())
        lines = events_to_jsonl(events).splitlines()
        assert len(lines) == len(events)
        parsed = [json.loads(line) for line in lines]
        assert [row["seq"] for row in parsed] == list(range(len(events)))

    def test_fault_stream_round_trips(self, tmp_path):
        result, events = recorded(dup_fault_spec())
        assert result.stats.duplicated > 0
        path = write_events_jsonl(events, tmp_path / "dup.events.jsonl")
        assert read_events_jsonl(path) == list(events)


class TestChromeTrace:
    def test_sync_trace_validates(self):
        result, events = recorded(sync_and_spec())
        payload = chrome_trace(events, n=result.n)
        assert validate_chrome_trace(payload) == []

    def test_async_trace_validates(self):
        result, events = recorded(async_spec())
        payload = chrome_trace(events, n=result.n)
        assert validate_chrome_trace(payload) == []

    def test_duplicate_flow_arrows_pair_up(self):
        result, events = recorded(dup_fault_spec())
        payload = chrome_trace(events)
        assert validate_chrome_trace(payload) == []
        starts = [e for e in payload["traceEvents"] if e.get("ph") == "s"]
        dups = [e for e in events if e.kind == "duplicate"]
        sends = [e for e in events if e.kind == "send"]
        assert len(starts) == len(sends) + len(dups)

    def test_tracks_cover_every_processor_and_the_scheduler(self):
        result, events = recorded(async_spec())
        payload = chrome_trace(events, n=result.n)
        names = {
            entry["args"]["name"]
            for entry in payload["traceEvents"]
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        assert names == {f"P{i}" for i in range(result.n)} | {"scheduler"}

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        _, events = recorded(sync_and_spec())
        path = write_chrome_trace(events, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_phase = {"traceEvents": [{"name": "x", "pid": 0, "ph": "Z"}]}
        assert any("unknown phase" in p for p in validate_chrome_trace(bad_phase))
        orphan_finish = {
            "traceEvents": [
                {
                    "name": "msg",
                    "ph": "f",
                    "bp": "e",
                    "id": 9,
                    "ts": 1.0,
                    "pid": 0,
                    "tid": 0,
                }
            ]
        }
        assert any(
            "no earlier start" in p for p in validate_chrome_trace(orphan_finish)
        )

    def test_validator_rejects_negative_timestamps(self):
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "i", "s": "t", "ts": -1, "pid": 0, "tid": 0}
            ]
        }
        assert any("negative" in p for p in validate_chrome_trace(bad))


class TestReconstruction:
    def test_result_from_events_matches_the_run(self):
        spec = sync_and_spec()
        result, events = recorded(spec)
        rebuilt = result_from_events(events, spec.ring.n)
        assert rebuilt.outputs == result.outputs
        assert rebuilt.halt_times == result.halt_times
        assert rebuilt.stats.messages == result.stats.messages
        assert rebuilt.stats.bits == result.stats.bits
        assert rebuilt.stats.per_cycle == result.stats.per_cycle
        assert rebuilt.stats.log == result.stats.log

    def test_rebuilt_result_drives_the_diagram(self):
        spec = sync_and_spec()
        result, events = recorded(spec)
        rebuilt = result_from_events(events, spec.ring.n)
        direct = space_time_diagram(spec.ring, result)
        from_stream = space_time_diagram(spec.ring, rebuilt, events=events)
        # Same sends, same halts; the stream version may add fault marks.
        assert direct.splitlines()[0] == from_stream.splitlines()[0]
        assert "* halt" in from_stream

    def test_async_reconstruction_counts_faults(self):
        result, events = recorded(dup_fault_spec())
        rebuilt = result_from_events(events, result.n)
        assert rebuilt.stats.duplicated == result.stats.duplicated
        assert rebuilt.stats.delivered == result.stats.delivered
        assert rebuilt.stats.dropped == result.stats.dropped
        assert rebuilt.outputs == result.outputs
