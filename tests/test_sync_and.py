"""§4.2 linear-message synchronous AND."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algorithms import compute_and_sync
from repro.algorithms.sync_and import SyncAnd
from repro.core import ConfigurationError, RingConfiguration


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8])
    def test_exhaustive(self, n):
        for bits in itertools.product((0, 1), repeat=n):
            result = compute_and_sync(RingConfiguration.oriented(bits))
            assert result.unanimous_output() == min(bits), bits

    @pytest.mark.parametrize("n", [9, 16, 33, 64])
    def test_random_large(self, n):
        for seed in range(5):
            config = RingConfiguration.random(n, random.Random(seed), oriented=True)
            result = compute_and_sync(config)
            assert result.unanimous_output() == min(config.inputs)

    def test_nonoriented_ring(self):
        """AND is orientation-blind: it works on arbitrary rings."""
        config = RingConfiguration((1, 0, 1, 1, 1), (1, 0, 0, 1, 0))
        result = compute_and_sync(config)
        assert result.unanimous_output() == 0

    def test_all_ones(self):
        result = compute_and_sync(RingConfiguration.oriented([1] * 9))
        assert result.unanimous_output() == 1

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_and_sync(RingConfiguration.oriented([1, 2]))

    def test_n1_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_and_sync(RingConfiguration.oriented([1]))


class TestComplexity:
    @pytest.mark.parametrize("n", [4, 8, 16, 32, 64])
    def test_linear_messages(self, n):
        """Never more than 2n messages, on any input."""
        for seed in range(6):
            config = RingConfiguration.random(n, random.Random(seed), oriented=True)
            result = compute_and_sync(config)
            assert result.stats.messages <= 2 * n

    def test_all_ones_is_silent(self):
        """The all-ones ring computes AND with zero messages — synchrony at work."""
        result = compute_and_sync(RingConfiguration.oriented([1] * 12))
        assert result.stats.messages == 0

    def test_all_zeros_cost(self):
        """Every zero announces in both directions: exactly 2n sends."""
        n = 10
        result = compute_and_sync(RingConfiguration.oriented([0] * n))
        assert result.stats.messages == 2 * n

    @pytest.mark.parametrize("n", [5, 9, 17])
    def test_halts_within_deadline(self, n):
        for seed in range(4):
            config = RingConfiguration.random(n, random.Random(seed), oriented=True)
            result = compute_and_sync(config)
            assert result.cycles <= n // 2 + 2

    def test_single_zero_wave(self):
        """One zero: the announcement sweeps both half-rings."""
        n = 11
        bits = [1] * n
        bits[0] = 0
        result = compute_and_sync(RingConfiguration.oriented(bits))
        assert result.unanimous_output() == 0
        # 2 initial sends + each 1-processor forwards at least once on the
        # path, bounded by 2n total.
        assert 2 <= result.stats.messages <= 2 * n
