"""Word homomorphisms and Theorem 6.3 (repro.homomorphisms.dol)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigurationError
from repro.core.strings import complement, cyclic_occurrences, reverse_complement
from repro.homomorphisms import (
    NAMED_HOMOMORPHISMS,
    ORIENT_UNIFORM,
    PALINDROME,
    THUE_MORSE,
    XOR_NONUNIFORM,
    XOR_UNIFORM,
    WordHom,
    make_bound,
    subword_complexity,
    verify_theorem_63,
)


class TestWordHom:
    def test_apply(self):
        assert XOR_UNIFORM.apply("01") == "011100"

    def test_iterate(self):
        assert THUE_MORSE.iterate("0", 3) == "01101001"  # Thue–Morse prefix

    def test_iterate_zero(self):
        assert XOR_UNIFORM.iterate("010", 0) == "010"

    def test_iterate_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            XOR_UNIFORM.iterate("0", -1)

    def test_bad_symbol(self):
        with pytest.raises(ConfigurationError):
            XOR_UNIFORM.apply("2")

    def test_bad_images(self):
        with pytest.raises(ConfigurationError):
            WordHom("", "1")
        with pytest.raises(ConfigurationError):
            WordHom("01", "0a")

    def test_uniformity(self):
        assert XOR_UNIFORM.is_uniform and XOR_UNIFORM.d == 3
        assert not XOR_NONUNIFORM.is_uniform
        with pytest.raises(ConfigurationError):
            _ = XOR_NONUNIFORM.d

    def test_single_letter_not_uniform(self):
        assert not WordHom("0", "1").is_uniform  # d must be >= 2

    @given(st.text(alphabet="01", min_size=1, max_size=10), st.integers(0, 4))
    def test_uniform_growth(self, word, k):
        assert len(XOR_UNIFORM.iterate(word, k)) == len(word) * 3**k

    @given(st.text(alphabet="01", min_size=1, max_size=6), st.text(alphabet="01", min_size=1, max_size=6))
    def test_homomorphism_property(self, u, v):
        for hom in NAMED_HOMOMORPHISMS.values():
            assert hom.apply(u + v) == hom.apply(u) + hom.apply(v)


class TestConditions:
    @pytest.mark.parametrize(
        "name,expected_c",
        [("xor_uniform", 2), ("orient_uniform", 2), ("thue_morse", 3), ("palindrome", 2)],
    )
    def test_condition_6c(self, name, expected_c):
        hom = NAMED_HOMOMORPHISMS[name]
        assert hom.find_c() == expected_c
        assert hom.satisfies_6c(expected_c)
        assert not hom.satisfies_6c(expected_c - 1)

    def test_failing_hom(self):
        constant_hom = WordHom("00", "00")
        assert constant_hom.find_c(5) is None

    def test_make_bound_requires_uniform(self):
        with pytest.raises(ConfigurationError):
            make_bound(XOR_NONUNIFORM)

    def test_make_bound_requires_6c(self):
        with pytest.raises(ConfigurationError):
            make_bound(WordHom("00", "11"), max_c=4)


class TestPaperIdentities:
    @pytest.mark.parametrize("k", range(1, 7))
    def test_xor_images_are_complements(self, k):
        """§6.3.1: h^k(1) = complement of h^k(0)."""
        assert XOR_UNIFORM.iterate("1", k) == complement(XOR_UNIFORM.iterate("0", k))

    @pytest.mark.parametrize("k", range(1, 7))
    def test_xor_parity_differs(self, k):
        assert XOR_UNIFORM.iterate("0", k).count("1") % 2 == 0
        assert XOR_UNIFORM.iterate("1", k).count("1") % 2 == 1

    @pytest.mark.parametrize("k", range(1, 7))
    def test_orient_reverse_complement(self, k):
        """§6.3.2: h^k(0) = reverse-complement of h^k(1)."""
        assert ORIENT_UNIFORM.iterate("0", k) == reverse_complement(
            ORIENT_UNIFORM.iterate("1", k)
        )

    @pytest.mark.parametrize("k", range(1, 7))
    def test_orient_block_structure(self, k):
        """h^k(0) = h^{k−1}(0) · h^{k−1}(1) · h^{k−1}(1)."""
        prev0 = ORIENT_UNIFORM.iterate("0", k - 1)
        prev1 = ORIENT_UNIFORM.iterate("1", k - 1)
        assert ORIENT_UNIFORM.iterate("0", k) == prev0 + prev1 + prev1

    @pytest.mark.parametrize("k", range(1, 5))
    def test_palindrome_images(self, k):
        """§7.2.1: h^k(0) and h^k(1) are palindromes."""
        for symbol in "01":
            word = PALINDROME.iterate(symbol, k)
            assert word == word[::-1]

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_palindrome_odd_iterate_centers_on_one(self, k):
        word = PALINDROME.iterate("0", k)
        assert word[len(word) // 2] == "1"

    @pytest.mark.parametrize("k", range(1, 5))
    def test_palindrome_counts(self, k):
        """p = (5^{2k}+3^{2k})/2 zeros, q = (5^{2k}−3^{2k})/2 ones in h^{2k}(0)."""
        word = PALINDROME.iterate("0", 2 * k)
        p = (5 ** (2 * k) + 3 ** (2 * k)) // 2
        q = (5 ** (2 * k) - 3 ** (2 * k)) // 2
        assert word.count("0") == p
        assert word.count("1") == q

    def test_thue_morse_is_cube_free_prefix(self):
        word = THUE_MORSE.iterate("0", 6)
        for bad in ("000", "111"):
            assert bad not in word


class TestTheorem63:
    @pytest.mark.parametrize("name", ["xor_uniform", "orient_uniform", "palindrome"])
    def test_verified_on_small_iterates(self, name):
        hom = NAMED_HOMOMORPHISMS[name]
        k = 4 if hom.d == 3 else 3
        assert verify_theorem_63(hom, k, "0", "1")

    def test_thue_morse_deeper(self):
        assert verify_theorem_63(THUE_MORSE, 6, "0", "1")

    def test_cross_seed(self):
        assert verify_theorem_63(XOR_UNIFORM, 3, "01", "10")

    def test_bound_values(self):
        bound = make_bound(XOR_UNIFORM)
        assert bound.c == 2
        assert bound.a == pytest.approx(1 / 9)
        assert bound.b == pytest.approx(1 / 27)

    def test_min_occurrences(self):
        bound = make_bound(XOR_UNIFORM)
        assert bound.min_occurrences(243, 3) >= 3

    def test_explicit_occurrence_check(self):
        """Every short factor of h^5(0) is frequent in h^5(1)."""
        bound = make_bound(XOR_UNIFORM)
        omega = XOR_UNIFORM.iterate("0", 5)
        omega_prime = XOR_UNIFORM.iterate("1", 5)
        cap = bound.max_factor_length(len(omega), 1)
        assert cap == 27
        from repro.core.strings import distinct_cyclic_substrings

        for sigma in distinct_cyclic_substrings(omega, 5):
            assert cyclic_occurrences(sigma, omega_prime) >= bound.b * len(
                omega_prime
            ) / len(sigma)


class TestSubwordComplexity:
    @pytest.mark.parametrize("length", [1, 2, 4, 8])
    def test_repetitive_strings_have_linear_complexity(self, length):
        """§8's remark: repetitive ⇒ O(k) distinct factors of length k."""
        word = XOR_UNIFORM.iterate("0", 6)  # 729 symbols
        assert subword_complexity(word, length) <= 4 * length + 4

    def test_random_string_is_not_repetitive(self):
        import random

        rng = random.Random(1)
        word = "".join(rng.choice("01") for _ in range(729))
        # Random strings have exponentially many short factors.
        assert subword_complexity(word, 8) > 4 * 8 + 4
