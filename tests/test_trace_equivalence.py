"""Optimized engines vs. reference engines: byte-identical traces.

The engines in ``repro.asynch.simulator`` / ``repro.sync.simulator`` keep
incremental structures (sorted pending list, live halt counter, reused
buffers) purely for speed; ``tests/reference_engines.py`` holds the
obviously-correct seed-style implementations of the same semantics.  On
randomized rings, schedules and wake-up times the two must agree on
*everything*: outputs, message and bit totals, per-cycle histograms, the
full envelope log, and even the exception raised on deadlock.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.async_input_distribution import AsyncInputDistribution
from repro.algorithms.sync_and import SyncAnd
from repro.algorithms.sync_input_distribution import SyncInputDistribution
from repro.asynch import AsyncProcess, run_async_synchronized, run_asynchronous
from repro.asynch.schedulers import (
    GreedyChannelScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.core import LEFT, RIGHT, RingConfiguration
from repro.sync import Out, SyncProcess, WakeupSchedule, run_synchronous

from reference_engines import (
    run_async_synchronized_reference,
    run_asynchronous_reference,
    run_synchronous_reference,
)


def outcome(run):
    """Run a simulation, capturing either the result or the failure."""
    try:
        return ("ok", run())
    except Exception as error:  # noqa: BLE001 - equivalence includes failures
        return ("error", type(error).__name__, str(error))


def assert_equivalent(got, want):
    """Optimized and reference outcomes must match in every observable."""
    assert got[0] == want[0], f"outcome kinds differ: {got[0]} vs {want[0]}"
    if got[0] == "error":
        assert got[1:] == want[1:]
        return
    a, b = got[1], want[1]
    assert a.outputs == b.outputs
    assert a.cycles == b.cycles
    assert a.halt_times == b.halt_times
    assert a.stats.messages == b.stats.messages
    assert a.stats.bits == b.stats.bits
    assert a.stats.per_cycle == b.stats.per_cycle
    assert a.stats.delivered == b.stats.delivered
    assert a.stats.dropped == b.stats.dropped
    assert a.stats.duplicated == b.stats.duplicated
    assert a.stats.log == b.stats.log  # byte-identical envelope sequence


class Chatter(AsyncProcess):
    """Randomized-but-deterministic async traffic (seeded per processor).

    Behavior is a pure function of ``(input, n)`` and the arrival
    sequence, so two engines delivering identical event sequences drive
    identical chatter.  Quotas may leave processors waiting at quiescence —
    then *both* engines must raise the same deadlock error.
    """

    def __init__(self, inp, n):
        super().__init__(inp, n)
        self.rng = random.Random((inp + 1) * 7919 + n)
        self.received = 0
        self.quota = self.rng.randrange(1, 4)

    def on_start(self, ctx):
        for port in (LEFT, RIGHT):
            for _ in range(self.rng.randrange(0, 3)):
                ctx.send(port, self.rng.randrange(8))

    def on_message(self, ctx, port, payload):
        self.received += 1
        if self.received >= self.quota:
            ctx.halt(self.received)
            return
        if self.rng.random() < 0.5:
            ctx.send(port.opposite, payload + 1)


_SCHEDULERS = {
    "round-robin": RoundRobinScheduler,
    "greedy": GreedyChannelScheduler,
    "random": lambda: RandomScheduler(1234),
}


class TestAsyncGeneral:
    @given(
        st.integers(2, 10),
        st.integers(0, 10_000),
        st.sampled_from(sorted(_SCHEDULERS)),
    )
    @settings(max_examples=30, deadline=None)
    def test_input_distribution(self, n, seed, scheduler_name):
        config = RingConfiguration.random(n, random.Random(seed))
        make = _SCHEDULERS[scheduler_name]
        got = outcome(
            lambda: run_asynchronous(
                config, AsyncInputDistribution, scheduler=make(), keep_log=True
            )
        )
        want = outcome(
            lambda: run_asynchronous_reference(
                config, AsyncInputDistribution, scheduler=make(), keep_log=True
            )
        )
        assert_equivalent(got, want)

    @given(
        st.integers(1, 9),
        st.integers(0, 10_000),
        st.sampled_from(sorted(_SCHEDULERS)),
    )
    @settings(max_examples=30, deadline=None)
    def test_chatter(self, n, seed, scheduler_name):
        config = RingConfiguration.random(
            n, random.Random(seed), input_values=range(16)
        )
        make = _SCHEDULERS[scheduler_name]
        got = outcome(
            lambda: run_asynchronous(config, Chatter, scheduler=make(), keep_log=True)
        )
        want = outcome(
            lambda: run_asynchronous_reference(
                config, Chatter, scheduler=make(), keep_log=True
            )
        )
        assert_equivalent(got, want)


class TestAsyncSynchronized:
    @given(st.integers(2, 10), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_input_distribution(self, n, seed):
        config = RingConfiguration.random(n, random.Random(seed))
        got = outcome(
            lambda: run_async_synchronized(
                config, AsyncInputDistribution, keep_log=True
            )
        )
        want = outcome(
            lambda: run_async_synchronized_reference(
                config, AsyncInputDistribution, keep_log=True
            )
        )
        assert_equivalent(got, want)

    @given(st.integers(1, 9), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_chatter(self, n, seed):
        config = RingConfiguration.random(
            n, random.Random(seed), input_values=range(16)
        )
        got = outcome(
            lambda: run_async_synchronized(config, Chatter, keep_log=True)
        )
        want = outcome(
            lambda: run_async_synchronized_reference(config, Chatter, keep_log=True)
        )
        assert_equivalent(got, want)


class WakeProbe(SyncProcess):
    """Exercises wake-by-message, wake inboxes and staggered halting."""

    def run(self):
        if not self.woke_spontaneously:
            return ("woken", self.input, list(self.wake_inbox))
        received = yield Out(left=("s", self.input), right=("s", self.input))
        return ("spont", self.input, received.items())


def _random_schedule(n: int, seed: int) -> WakeupSchedule:
    rng = random.Random(seed)
    times = [rng.randrange(0, 4) for _ in range(n)]
    times[rng.randrange(n)] = 0  # schedules are normalized to min 0
    return WakeupSchedule(tuple(times))


class TestSynchronous:
    @given(st.integers(2, 10), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_sync_and(self, n, seed):
        config = RingConfiguration.random(n, random.Random(seed), oriented=True)
        got = outcome(lambda: run_synchronous(config, SyncAnd, keep_log=True))
        want = outcome(
            lambda: run_synchronous_reference(config, SyncAnd, keep_log=True)
        )
        assert_equivalent(got, want)

    @given(st.integers(2, 9), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_input_distribution(self, n, seed):
        config = RingConfiguration.random(n, random.Random(seed), oriented=True)
        got = outcome(
            lambda: run_synchronous(config, SyncInputDistribution, keep_log=True)
        )
        want = outcome(
            lambda: run_synchronous_reference(
                config, SyncInputDistribution, keep_log=True
            )
        )
        assert_equivalent(got, want)

    @given(st.integers(2, 10), st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_wakeups(self, n, seed, wake_seed):
        config = RingConfiguration.random(
            n, random.Random(seed), input_values=range(8)
        )
        schedule = _random_schedule(n, wake_seed)
        got = outcome(
            lambda: run_synchronous(config, WakeProbe, wakeup=schedule, keep_log=True)
        )
        want = outcome(
            lambda: run_synchronous_reference(
                config, WakeProbe, wakeup=schedule, keep_log=True
            )
        )
        assert_equivalent(got, want)

    def test_one_processor_ring(self):
        class SelfTalk(SyncProcess):
            def run(self):
                received = yield Out(left="a", right="b")
                return (received.left, received.right)

        config = RingConfiguration.oriented([0])
        got = outcome(lambda: run_synchronous(config, SelfTalk, keep_log=True))
        want = outcome(
            lambda: run_synchronous_reference(config, SelfTalk, keep_log=True)
        )
        assert_equivalent(got, want)
