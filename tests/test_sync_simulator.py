"""The synchronous lock-step engine: timing, wake-ups, halting, budgets."""

from __future__ import annotations

import pytest

from repro.core import (
    LEFT,
    NonTerminationError,
    RIGHT,
    RingConfiguration,
    SimulationError,
)
from repro.sync import ABSENT, In, Out, SyncProcess, WakeupSchedule, run_synchronous
from repro.sync.process import expect_single
from repro.core.errors import ProtocolError


class Silent(SyncProcess):
    """Halts immediately without sending."""

    def run(self):
        return "done"
        yield  # pragma: no cover


class OneShot(SyncProcess):
    """Sends its input right once, reports what it saw."""

    def run(self):
        received = yield Out(right=self.input)
        return (received.left, received.right)


class Forever(SyncProcess):
    def run(self):
        while True:
            yield Out()


class TestBasics:
    def test_silent_halts_at_cycle_zero(self):
        result = run_synchronous(RingConfiguration.oriented([0, 0]), Silent)
        assert result.outputs == ("done", "done")
        assert result.halt_times == (0, 0)
        assert result.stats.messages == 0

    def test_same_cycle_delivery(self):
        """A message sent at cycle t is received at cycle t (§2 semantics)."""
        result = run_synchronous(RingConfiguration.oriented([7, 8, 9]), OneShot)
        # Clockwise: i's right send arrives at i+1's left port, same cycle.
        assert result.outputs == ((9, ABSENT), (7, ABSENT), (8, ABSENT))
        assert result.cycles == 1

    def test_message_accounting(self):
        result = run_synchronous(RingConfiguration.oriented([1, 1]), OneShot)
        assert result.stats.messages == 2
        assert result.stats.per_cycle == {0: 2}

    def test_nontermination_budget(self):
        with pytest.raises(NonTerminationError):
            run_synchronous(
                RingConfiguration.oriented([0, 0]), Forever, max_cycles=10
            )

    def test_yielding_non_out_rejected(self):
        class Bad(SyncProcess):
            def run(self):
                yield "nope"

        with pytest.raises(SimulationError):
            run_synchronous(RingConfiguration.oriented([0, 0]), Bad)

    def test_message_to_halted_is_dropped_but_counted(self):
        class ZeroHaltsOneSends(SyncProcess):
            def run(self):
                if self.input == 0:
                    return "early"
                yield Out()  # cycle 0: let the zero halt first
                yield Out(right=None)  # cycle 1: send into the void
                return "sent"

        result = run_synchronous(
            RingConfiguration.oriented([0, 1]), ZeroHaltsOneSends
        )
        assert result.outputs == ("early", "sent")
        assert result.stats.messages == 1


class TestPortMapping:
    def test_opposing_orientations_same_port(self):
        """Two processors both calling each other 'right' (n=2, D=(1,0))."""

        class SendRight(SyncProcess):
            def run(self):
                received = yield Out(right=self.input)
                return (received.left is not ABSENT, received.right is not ABSENT)

        ring = RingConfiguration([10, 20], (1, 0))
        result = run_synchronous(ring, SendRight)
        # 0's right is +1 channel: arrives at 1; D(1)=0 so 1's right faces 0
        # through... both sends land on the *right* port of the receiver.
        assert result.outputs == ((False, True), (False, True))

    def test_three_ring_flipped_middle(self):
        class Probe(SyncProcess):
            def run(self):
                received = yield Out(left="L", right="R")
                return (received.left, received.right)

        ring = RingConfiguration([0, 1, 2], (1, 0, 1))
        result = run_synchronous(ring, Probe)
        # Processor 1 is flipped: its left is processor 2, right is 0.
        # It receives 0's R on its right port and 2's L on its left port.
        assert result.outputs[1] == ("L", "R")


class TestWakeups:
    def test_staggered_spontaneous(self):
        class Waker(SyncProcess):
            def run(self):
                return ("spont", self.woke_spontaneously)
                yield  # pragma: no cover

        schedule = WakeupSchedule((0, 2, 1))
        result = run_synchronous(
            RingConfiguration.oriented([0, 0, 0]), Waker, wakeup=schedule
        )
        assert result.halt_times == (0, 2, 1)
        assert all(out[1] for out in result.outputs)

    def test_message_wakes_sleeper(self):
        class WakeOther(SyncProcess):
            def run(self):
                if self.woke_spontaneously:
                    yield Out(right="wake!")
                    return "waker"
                return ("woken", list(self.wake_inbox))
                yield  # pragma: no cover

        schedule = WakeupSchedule((0, 100))
        result = run_synchronous(
            RingConfiguration.oriented([0, 0]), WakeOther, wakeup=schedule
        )
        waker, woken = result.outputs
        assert waker == "waker"
        assert woken[0] == "woken"
        assert woken[1] == [(LEFT, "wake!")]
        # Woken at cycle 1, not at its spontaneous cycle 100.
        assert result.halt_times[1] == 1

    def test_schedule_size_mismatch(self):
        with pytest.raises(SimulationError):
            run_synchronous(
                RingConfiguration.oriented([0, 0]),
                Silent,
                wakeup=WakeupSchedule((0, 0, 0)),
            )


class TestHelpers:
    def test_out_on(self):
        out = Out.on(LEFT, "x")
        assert out.left == "x" and out.right is ABSENT
        assert list(out.sends()) == [(LEFT, "x")]

    def test_out_both(self):
        out = Out.both("a", "b")
        assert len(list(out.sends())) == 2

    def test_out_via(self):
        out = Out(left="x")
        assert out.via(LEFT) == "x"
        assert out.via(RIGHT) is ABSENT

    def test_in_helpers(self):
        got = In(left="x")
        assert got.any() and got.has(LEFT) and not got.has(RIGHT)
        assert got.items() == [(LEFT, "x")]
        assert got.count() == 1

    def test_in_none_payload_counts(self):
        """None is a real (nil) message, distinct from ABSENT."""
        got = In(left=None)
        assert got.any() and got.count() == 1

    def test_expect_single(self):
        assert expect_single(In(right=3)) == (RIGHT, 3)
        with pytest.raises(ProtocolError):
            expect_single(In())
        with pytest.raises(ProtocolError):
            expect_single(In(left=1, right=2))

    def test_sleep_collects(self):
        class Sleeper(SyncProcess):
            def run(self):
                inbox = yield from self.sleep(3)
                return inbox

            # partner sends at cycle 1

        class Partner(SyncProcess):
            def run(self):
                yield Out()
                yield Out(right="hello")
                return None

        class Both(SyncProcess):
            def run(self):
                if self.input == 0:
                    inbox = yield from self.sleep(3)
                    return [(t, got.items()) for t, got in inbox]
                yield Out()
                yield Out(right="hello")
                yield from self.sleep(1)
                return None

        result = run_synchronous(RingConfiguration.oriented([0, 1]), Both)
        inbox = result.outputs[0]
        assert inbox == [(1, [(LEFT, "hello")])]

    def test_absent_singleton_falsy(self):
        assert not ABSENT
        assert repr(ABSENT) == "ABSENT"
