"""Digest canonicality: behaviorally identical specs share one cache slot.

Regression tests for the spec-validation bugfixes: duplicate ``params``
keys (two digests, one run) and inert knobs (``scheduler_seed`` without a
seeded scheduler, ``delay_bound`` without ``bounded-delay``,
``fault_horizon`` without a ``fault_profile``) are rejected in
``RunSpec.__post_init__`` so they can never pollute a digest.  The
flip side is pinned too: every knob that *can* influence a run still
distinguishes digests.
"""

from __future__ import annotations

import random

import pytest

from repro.core import RingConfiguration
from repro.core.errors import ConfigurationError
from repro.runtime import RunSpec


def _ring(n: int = 6, seed: int = 1) -> RingConfiguration:
    return RingConfiguration.random(n, random.Random(seed), oriented=False)


def _spec(**overrides) -> RunSpec:
    base = dict(engine="async", ring=_ring(), algorithm="input-distribution")
    base.update(overrides)
    return RunSpec.make(**base)


class TestDuplicateParams:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate params keys"):
            RunSpec(
                engine="async",
                ring=_ring(),
                algorithm="input-distribution",
                params=(("k", 1), ("k", 2)),
            )

    def test_error_names_the_offending_keys(self):
        with pytest.raises(ConfigurationError, match=r"\['a', 'b'\]"):
            RunSpec(
                engine="async",
                ring=_ring(),
                algorithm="input-distribution",
                params=(("b", 1), ("a", 1), ("b", 2), ("a", 2)),
            )

    def test_distinct_keys_still_fine_and_sorted(self):
        spec = RunSpec(
            engine="async",
            ring=_ring(),
            algorithm="input-distribution",
            params=(("b", 2), ("a", 1)),
        )
        assert spec.params == (("a", 1), ("b", 2))

    def test_same_mapping_same_digest_whatever_the_order(self):
        a = RunSpec(engine="async", ring=_ring(), algorithm="input-distribution",
                    params=(("a", 1), ("b", 2)))
        b = RunSpec(engine="async", ring=_ring(), algorithm="input-distribution",
                    params=(("b", 2), ("a", 1)))
        assert a.params_dict == b.params_dict
        assert a.digest() == b.digest()


class TestInertKnobsRejected:
    def test_scheduler_seed_without_seeded_scheduler(self):
        with pytest.raises(ConfigurationError, match="scheduler_seed is inert"):
            _spec(scheduler_seed=7)  # default scheduler (round-robin)
        with pytest.raises(ConfigurationError, match="scheduler_seed is inert"):
            _spec(scheduler="greedy", scheduler_seed=7)

    def test_scheduler_seed_with_seeded_scheduler_is_fine(self):
        _spec(scheduler="random", scheduler_seed=7)
        _spec(scheduler="bounded-delay", scheduler_seed=7)

    def test_delay_bound_without_bounded_delay(self):
        with pytest.raises(ConfigurationError, match="delay_bound.*inert"):
            _spec(delay_bound=3)
        with pytest.raises(ConfigurationError, match="delay_bound.*inert"):
            _spec(scheduler="random", scheduler_seed=1, delay_bound=3)

    def test_delay_bound_with_bounded_delay_is_fine(self):
        spec = _spec(scheduler="bounded-delay", scheduler_seed=1, delay_bound=3)
        assert spec.delay_bound == 3

    def test_fault_horizon_without_profile(self):
        with pytest.raises(ConfigurationError, match="fault_horizon is inert"):
            _spec(fault_horizon=100)

    def test_fault_horizon_with_profile_is_fine(self):
        _spec(fault_profile="drop", fault_seed=1, fault_horizon=100)


class TestCanonicality:
    """Equal behavior ⇒ equal digest, now enforced by construction.

    The inert-field rejections above mean there is exactly one spelling
    of each behavior; these tests pin that the one remaining spelling is
    digest-stable and that every *effective* knob still separates specs.
    """

    def test_default_knobs_have_one_spelling(self):
        # The only way to express "round-robin, no faults" is the
        # default field values — so its digest is unique by construction.
        assert _spec().digest() == _spec().digest()

    def test_effective_knobs_still_distinguish(self):
        base = _spec(scheduler="bounded-delay", scheduler_seed=1)
        assert base.digest() != base.with_(scheduler_seed=2).digest()
        assert base.digest() != base.with_(delay_bound=3).digest()
        faulty = _spec(fault_profile="crash", fault_seed=1, fault_horizon=50)
        assert faulty.digest() != faulty.with_(fault_horizon=60).digest()
