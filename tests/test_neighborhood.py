"""Symmetry index functions (§2): SI(R, k) and SI(R₁,…,R_j, k)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    RingConfiguration,
    neighborhood_counts,
    occurrences,
    shared_neighborhood_pairs,
    symmetry_index,
    symmetry_index_set,
    symmetry_profile,
    symmetry_profile_set,
)


def ring_from_seed(n: int, iseed: int, dseed: int) -> RingConfiguration:
    return RingConfiguration(
        tuple((iseed >> i) & 1 for i in range(n)),
        tuple((dseed >> i) & 1 for i in range(n)),
    )


class TestSymmetryIndex:
    def test_fully_symmetric(self):
        """All-equal configuration: SI(R, k) = n for every k."""
        ring = RingConfiguration.oriented((1,) * 7)
        for k in range(5):
            assert symmetry_index(ring, k) == 7

    def test_unique_input(self):
        """A unique value forces SI(R, k) = 1."""
        ring = RingConfiguration.oriented((1, 1, 0, 1, 1))
        for k in range(4):
            assert symmetry_index(ring, k) == 1

    def test_periodic(self):
        """Period-2 pattern: every neighborhood occurs n/2 times."""
        ring = RingConfiguration.oriented((0, 1) * 4)
        for k in range(4):
            assert symmetry_index(ring, k) == 4

    def test_period_three(self):
        ring = RingConfiguration.oriented((0, 1, 1) * 3)
        for k in range(4):
            assert symmetry_index(ring, k) == 3

    @given(st.integers(2, 9), st.integers(0, 511), st.integers(0, 511))
    def test_monotone_in_k(self, n, iseed, dseed):
        """Larger neighborhoods are rarer: SI is nonincreasing in k."""
        ring = ring_from_seed(n, iseed, dseed)
        profile = symmetry_profile(ring, 4)
        values = [profile[k] for k in range(5)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    @given(st.integers(2, 9), st.integers(0, 511), st.integers(1, 8))
    def test_rotation_invariant(self, n, iseed, shift):
        ring = RingConfiguration.oriented(tuple((iseed >> i) & 1 for i in range(n)))
        for k in range(3):
            assert symmetry_index(ring, k) == symmetry_index(ring.rotated(shift), k)

    @given(st.integers(2, 9), st.integers(0, 511), st.integers(0, 511))
    def test_reflection_invariant(self, n, iseed, dseed):
        ring = ring_from_seed(n, iseed, dseed)
        for k in range(3):
            assert symmetry_index(ring, k) == symmetry_index(ring.reflected(), k)

    @given(st.integers(2, 9), st.integers(0, 511), st.integers(0, 511))
    def test_bounds(self, n, iseed, dseed):
        ring = ring_from_seed(n, iseed, dseed)
        for k in range(3):
            assert 1 <= symmetry_index(ring, k) <= n


class TestSymmetryIndexSet:
    def test_requires_configs(self):
        with pytest.raises(ValueError):
            symmetry_index_set([], 0)

    def test_single_matches_plain(self):
        ring = RingConfiguration.oriented((0, 1, 1, 0, 1))
        for k in range(3):
            assert symmetry_index_set([ring], k) == symmetry_index(ring, k)

    def test_two_copies_double(self):
        """SI(R, R, k) = 2·SI(R, k) — the single-configuration sync pair."""
        ring = RingConfiguration.oriented((0, 1, 1) * 3)
        for k in range(3):
            assert symmetry_index_set([ring, ring], k) == 2 * symmetry_index(ring, k)

    def test_complementary_pair(self):
        """h^k(0) and its complement share all neighborhoods (§6.3.1 idea)."""
        from repro.homomorphisms import XOR_UNIFORM

        i1 = XOR_UNIFORM.iterate("0", 3)
        i2 = XOR_UNIFORM.iterate("1", 3)
        r1 = RingConfiguration.from_string(i1)
        r2 = RingConfiguration.from_string(i2)
        # Joint SI must stay high even if some pattern is rare in one ring.
        assert symmetry_index_set([r1, r2], 1) >= 2

    @given(st.integers(2, 8), st.integers(0, 255), st.integers(0, 255))
    def test_set_at_least_min_member(self, n, iseed1, iseed2):
        r1 = RingConfiguration.oriented(tuple((iseed1 >> i) & 1 for i in range(n)))
        r2 = RingConfiguration.oriented(tuple((iseed2 >> i) & 1 for i in range(n)))
        for k in range(3):
            joint = symmetry_index_set([r1, r2], k)
            assert joint >= min(symmetry_index(r1, k), symmetry_index(r2, k))

    def test_profile_set(self):
        ring = RingConfiguration.oriented((0, 1) * 3)
        profile = symmetry_profile_set([ring, ring], 2)
        assert profile == {0: 6, 1: 6, 2: 6}


class TestCyclicCorrespondence:
    """§2's closing remark: neighborhood occurrences ↔ cyclic string
    occurrences of the two representative strings σ₁ (as-is) and σ₂
    (reverse-complement of the D bits) in ω = D(1)I(1)…D(n)I(n)."""

    @given(st.integers(3, 9), st.integers(0, 511), st.integers(0, 511), st.integers(0, 2))
    def test_occurrence_counts_match(self, n, iseed, dseed, k):
        ring = ring_from_seed(n, iseed, dseed)
        omega = "".join(
            f"{ring.orientations[i]}{ring.inputs[i]}" for i in range(n)
        )
        for i in range(n):
            # σ1: the window read in +index order, D bits as-is.
            window = [
                (ring.orientations[(i + d) % n], ring.inputs[(i + d) % n])
                for d in range(-k, k + 1)
            ]
            sigma1 = "".join(f"{dbit}{inp}" for dbit, inp in window)
            # σ2: reversed window with complemented D bits.
            sigma2 = "".join(
                f"{1 - dbit}{inp}" for dbit, inp in reversed(window)
            )
            # count processor-aligned cyclic occurrences of σ1 and σ2 in ω
            # (ω has two characters per processor).
            aligned = sum(
                1
                for j in range(n)
                for sigma in ({sigma1, sigma2} if sigma2 != sigma1 else {sigma1})
                if all(
                    omega[2 * ((j + t) % n) : 2 * ((j + t) % n) + 2]
                    == sigma[2 * (t + k) : 2 * (t + k) + 2]
                    for t in range(-k, k + 1)
                )
            )
            assert occurrences(ring, ring.neighborhood(i, k)) == aligned


class TestCounts:
    def test_neighborhood_counts_total(self):
        ring = RingConfiguration.oriented((0, 1, 1, 0))
        counts = neighborhood_counts(ring, 1)
        assert sum(counts.values()) == 4

    def test_occurrences(self):
        ring = RingConfiguration.oriented((0, 1, 0, 1))
        sigma = ring.neighborhood(0, 1)
        assert occurrences(ring, sigma) == 2

    def test_occurrences_absent(self):
        ring = RingConfiguration.oriented((0, 0, 0))
        sigma = ((1, 1), (1, 1), (1, 1))
        assert occurrences(ring, sigma) == 0

    def test_occurrences_validates_length(self):
        ring = RingConfiguration.oriented((0, 0, 0))
        with pytest.raises(ValueError):
            occurrences(ring, ((1, 0), (1, 0)))

    def test_shared_pairs(self):
        r1 = RingConfiguration.oriented((1, 1, 1))
        r2 = RingConfiguration.oriented((1, 1, 0))
        pairs = list(shared_neighborhood_pairs(r1, r2, 0))
        # Every r1 processor (input 1) matches r2's processors 0 and 1.
        assert len(pairs) == 6

    def test_shared_pairs_empty(self):
        r1 = RingConfiguration.oriented((1, 1))
        r2 = RingConfiguration.oriented((0, 0))
        assert list(shared_neighborhood_pairs(r1, r2, 0)) == []
