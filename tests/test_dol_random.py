"""Property tests over *random* homomorphisms.

The paper proves Theorem 6.3 for any uniform homomorphism satisfying
(6c); hypothesis builds random homomorphisms and checks the theorem holds
whenever its hypotheses do — a much broader net than the five named
instances.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.homomorphisms import WordHom, make_bound, verify_theorem_63
from repro.homomorphisms.matrix import hom_spectrum, lemma_78, pull_back

binary_word = st.text(alphabet="01", min_size=2, max_size=4)


@st.composite
def uniform_homs(draw):
    length = draw(st.integers(2, 4))
    image0 = draw(st.text(alphabet="01", min_size=length, max_size=length))
    image1 = draw(st.text(alphabet="01", min_size=length, max_size=length))
    return WordHom(image0, image1)


@st.composite
def positive_homs(draw):
    """Homomorphisms whose characteristic matrix is strictly positive."""
    hom = draw(uniform_homs())
    (a, c), (b, d) = hom.characteristic_matrix
    assume(min(a, b, c, d) > 0)
    return hom


class TestRandomHomomorphisms:
    @given(uniform_homs())
    @settings(max_examples=60, deadline=None)
    def test_theorem_63_holds_whenever_6c_does(self, hom):
        c = hom.find_c(max_c=4)
        assume(c is not None)
        k = c + 2
        assume(hom.d**k <= 1024)  # keep the brute-force check fast
        assert verify_theorem_63(hom, k, "0", "1")

    @given(uniform_homs())
    @settings(max_examples=60, deadline=None)
    def test_bound_constants_positive(self, hom):
        c = hom.find_c(max_c=4)
        assume(c is not None)
        bound = make_bound(hom)
        assert 0 < bound.b < bound.a <= 1

    @given(positive_homs())
    @settings(max_examples=60, deadline=None)
    def test_lemma_71_dominant_eigenvalue(self, hom):
        spec = hom_spectrum(hom)
        assert spec.mu > 1
        assert spec.mu >= abs(spec.nu)
        assert spec.w0[0] > 0 and spec.w0[1] > 0

    # Uniform homomorphisms cannot have |det| = 1 (the paper's remark after
    # Theorem 7.5), so unit-determinant instances are nonuniform by nature.
    UNIT_DET_HOMS = (
        WordHom("011", "10"),    # det −1 (the paper's §7.1.1 instance)
        WordHom("011", "01"),    # det −1
        WordHom("001", "01"),    # det +1
        WordHom("00111", "011"),  # det +1
    )

    @given(st.sampled_from(UNIT_DET_HOMS), st.integers(10, 500))
    @settings(max_examples=80, deadline=None)
    def test_pull_back_roundtrip(self, hom, n):
        (a, c), (b, d) = hom.characteristic_matrix
        target = (max(1, n // 3), max(1, n - n // 3))
        result = pull_back(hom, target)
        # forward application of the matrix recovers the target exactly
        vec = result.seed
        for _ in range(result.k):
            vec = (a * vec[0] + c * vec[1], b * vec[0] + d * vec[1])
        assert vec == target

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 3000))
    @settings(max_examples=80, deadline=None)
    def test_lemma_78_balanced(self, p, q, n):
        import math

        assume(math.gcd(p, q) == 1)
        r, s = lemma_78(p, q, n)
        assert r * p + s * q == n
        assert abs(r - s) <= (p + q) / 2
