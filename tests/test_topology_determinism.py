"""Property tests: topology runs are deterministic everywhere they run.

A spec with a :class:`TopologySpec` (or ``message_mode="oblivious"``)
must be a pure function of its coordinates: the per-round layouts come
from ``random.Random(f"topology|{seed}|{cycle}")``, never from process
state, so byte-identical results are required across worker counts
(``jobs`` 1/2/4 fan specs over a ``multiprocessing`` pool), across
batching (a spec alone vs buried in a mixed batch), and across the HTTP
gateway (a different thread, serializing over a socket).  Pickle
equality is the strongest practical proxy for byte-identity here — it
covers outputs, TraceStats, halt times and cycle counts at once.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RingConfiguration
from repro.runtime import Runner, RunSpec
from repro.topology import TopologySpec


def _leader_ring(n: int, leader: int) -> RingConfiguration:
    inputs = [0] * n
    inputs[leader] = 1
    return RingConfiguration.oriented(tuple(inputs))


@st.composite
def counting_specs(draw) -> RunSpec:
    """A dynamic-counting or oblivious-counting spec on a small ring."""
    n = draw(st.integers(min_value=2, max_value=6))
    ring = _leader_ring(n, draw(st.integers(min_value=0, max_value=n - 1)))
    if draw(st.booleans()):
        return RunSpec.make(
            engine="sync",
            ring=ring,
            algorithm="dynamic-counting",
            topology=TopologySpec(
                kind="dynamic-ring",
                seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
                churn=draw(st.sampled_from([1.0, 0.5])),
                path_rate=draw(st.sampled_from([0.0, 0.3])),
            ),
        )
    return RunSpec.make(
        engine="sync",
        ring=ring,
        algorithm="oblivious-counting",
        message_mode="oblivious",
    )


def _filler_specs() -> list:
    """Unrelated specs to bury the probe in (exercises batch routing)."""
    return [
        RunSpec.make(
            engine="sync-batch",
            ring=RingConfiguration.oriented((1, 0, 1, 1)),
            algorithm="sync-and",
        ),
        RunSpec.make(
            engine="sync",
            ring=RingConfiguration.oriented((1, 1, 0)),
            algorithm="sync-and",
        ),
    ]


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(spec=counting_specs())
    def test_rerun_is_pickle_identical_and_correct(self, spec):
        first = Runner().run_specs([spec])[0]
        second = Runner().run_specs([spec])[0]
        assert pickle.dumps(first) == pickle.dumps(second)
        assert all(out == spec.ring.n for out in first.outputs)

    @settings(max_examples=15, deadline=None)
    @given(spec=counting_specs())
    def test_alone_equals_batched(self, spec):
        alone = Runner().run_specs([spec])[0]
        batch = _filler_specs() + [spec] + _filler_specs()
        buried = Runner().run_specs(batch)[2]
        assert pickle.dumps(alone) == pickle.dumps(buried)

    @settings(max_examples=4, deadline=None)
    @given(spec=counting_specs())
    def test_jobs_1_2_4_are_byte_identical(self, spec):
        batch = [spec] + _filler_specs()
        baseline = Runner(jobs=1).run_specs(batch)
        for jobs in (2, 4):
            fanned = Runner(jobs=jobs).run_specs(batch)
            assert pickle.dumps(fanned) == pickle.dumps(baseline)


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    from repro.runtime import SqliteResultCache
    from repro.serve import ServerThread

    cache = SqliteResultCache(tmp_path_factory.mktemp("gateway-cache"))
    with ServerThread(cache=cache) as server:
        yield server


class TestGatewayParity:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(spec=counting_specs())
    def test_gateway_result_equals_local(self, gateway, spec):
        from repro.serve import submit_specs

        (outcome,) = submit_specs(gateway.url, [spec])
        assert outcome.status in ("done", "cached")
        assert outcome.digest == spec.digest()
        local = Runner().run_specs([spec])[0]
        assert pickle.dumps(outcome.result) == pickle.dumps(local)
