"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import RingConfiguration


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded RNG per test."""
    return random.Random(0xA5A5)


def all_binary_rings(n: int, oriented: bool = True):
    """Every binary input configuration of size ``n`` (oriented by default)."""
    for bits in itertools.product((0, 1), repeat=n):
        if oriented:
            yield RingConfiguration.oriented(bits)
        else:
            for orient in itertools.product((0, 1), repeat=n):
                yield RingConfiguration(bits, orient)


def random_ring(n: int, seed: int, oriented: bool = False) -> RingConfiguration:
    """A reproducible random binary ring."""
    return RingConfiguration.random(n, random.Random(seed), oriented=oriented)
