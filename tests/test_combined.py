"""The composed orient-then-distribute pipeline (odd general rings)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algorithms import distribute_inputs_general
from repro.algorithms.combined import barrier_cycle, message_bound
from repro.core import ConfigurationError, RingConfiguration, RingView


def check_run(config: RingConfiguration) -> None:
    result = distribute_inputs_general(config)
    switches = tuple(switch for switch, _view in result.outputs)
    oriented = config.apply_switches(switches)
    assert oriented.is_oriented
    for i in range(config.n):
        assert result.outputs[i][1] == RingView.from_configuration(oriented, i)


class TestCorrectness:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_exhaustive_orientations(self, n):
        for bits in itertools.product((0, 1), repeat=n):
            inputs = tuple((i * 7 + 3) % 2 for i in range(n))
            check_run(RingConfiguration(inputs, bits))

    @pytest.mark.parametrize("n", [9, 15, 21])
    def test_random(self, n):
        for seed in range(4):
            check_run(RingConfiguration.random(n, random.Random(seed)))

    def test_periodic_inputs(self):
        check_run(RingConfiguration((0, 1, 1) * 3, (1, 0) * 4 + (1,)))

    @pytest.mark.parametrize("n", [4, 6, 8, 12])
    def test_even_rings_supported(self, n):
        """Even rings branch into the alternating variant when needed."""
        for seed in range(3):
            config = RingConfiguration.random(n, random.Random(seed))
            result = distribute_inputs_general(config)
            switches = tuple(switch for switch, _view in result.outputs)
            fixed = config.apply_switches(switches)
            assert fixed.is_quasi_oriented
            for i in range(n):
                assert result.outputs[i][1] == RingView.from_configuration(fixed, i)

    def test_two_half_rings_goes_alternating(self):
        """The Theorem 3.5 configuration takes the alternating branch and
        still distributes every input."""
        config = RingConfiguration.two_half_rings(4, inputs=(1, 0, 1, 1, 0, 0, 1, 0))
        result = distribute_inputs_general(config)
        switches = tuple(switch for switch, _view in result.outputs)
        fixed = config.apply_switches(switches)
        assert fixed.is_alternating
        for i in range(config.n):
            assert result.outputs[i][1] == RingView.from_configuration(fixed, i)

    def test_tiny_rejected(self):
        with pytest.raises(ConfigurationError):
            distribute_inputs_general(RingConfiguration.random(2, random.Random(0)))

    def test_oriented_ring_works_too(self):
        check_run(RingConfiguration.oriented([1, 0, 1, 1, 0]))


class TestComplexity:
    @pytest.mark.parametrize("n", [9, 27, 45])
    def test_message_bound(self, n):
        for seed in range(3):
            config = RingConfiguration.random(n, random.Random(seed))
            result = distribute_inputs_general(config)
            assert result.stats.messages <= message_bound(n)

    def test_barrier_is_uniform(self):
        """Stage 2 can only be correct if the barrier is input-independent."""
        assert barrier_cycle(9) == barrier_cycle(9)
        assert barrier_cycle(27) > barrier_cycle(9)

    def test_cycles_dominated_by_barrier_plus_fig2(self):
        from repro.algorithms.sync_input_distribution import cycle_bound

        n = 15
        config = RingConfiguration.random(n, random.Random(2))
        result = distribute_inputs_general(config)
        assert result.cycles <= barrier_cycle(n) + cycle_bound(n) + 2
