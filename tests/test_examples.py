"""Every example script must run cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: pathlib.Path):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples should narrate what they do"


def test_examples_exist():
    assert len(EXAMPLES) >= 3
