"""Batch engine vs generator engine: byte-identical results, property-style.

The vectorized engine's whole contract is that batching is invisible:
for every supported spec, the per-run :class:`RunResult` — outputs,
``TraceStats`` (messages/bits/per-cycle histogram), cycles, halt times —
pickles to the same bytes as ``run_synchronous``'s, and a run that
exhausts its budget raises a ``NonTerminationError`` with the identical
message.  Hypothesis drives random ring sizes, inputs, orientations,
wake-up schedules and (sometimes starving) budgets through both engines,
always with several specs per batch so padding and cross-run isolation
are exercised too.
"""

from __future__ import annotations

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import run_batch_outcomes
from repro.core import RingConfiguration
from repro.runtime import RunSpec, execute


def reference_outcome(spec: RunSpec):
    """Run the generator engine, capturing the result or the failure."""
    try:
        return ("ok", pickle.dumps(execute(spec.with_(engine="sync"))))
    except Exception as error:  # noqa: BLE001 - equivalence includes failures
        return ("error", type(error).__name__, str(error))


def batch_outcome(outcome):
    if isinstance(outcome, BaseException):
        return ("error", type(outcome).__name__, str(outcome))
    return ("ok", pickle.dumps(outcome))


def assert_batch_equivalent(specs):
    outcomes = run_batch_outcomes(specs)
    for spec, outcome in zip(specs, outcomes):
        assert batch_outcome(outcome) == reference_outcome(spec)


def _and_spec(rng: random.Random) -> RunSpec:
    n = rng.randint(2, 12)
    ring = RingConfiguration(
        inputs=tuple(rng.randint(0, 1) for _ in range(n)),
        orientations=tuple(rng.randint(0, 1) for _ in range(n)),
    )
    kwargs = {}
    if rng.random() < 0.5:
        kwargs["wakeup"] = tuple(rng.randint(0, 4) for _ in range(n))
    if rng.random() < 0.3:
        kwargs["budget"] = rng.randint(1, 2 * n + 4)  # sometimes starving
    return RunSpec.make(
        engine="sync-batch", ring=ring, algorithm="sync-and", **kwargs
    )


def _start_spec(rng: random.Random) -> RunSpec:
    n = rng.randint(2, 10)
    ring = RingConfiguration(
        inputs=tuple(0 for _ in range(n)),
        orientations=tuple(rng.randint(0, 1) for _ in range(n)),
    )
    kwargs = {}
    if rng.random() < 0.6:
        kwargs["wakeup"] = tuple(rng.randint(0, 5) for _ in range(n))
    if rng.random() < 0.3:
        kwargs["budget"] = rng.randint(1, 3 * n + 8)
    return RunSpec.make(
        engine="sync-batch", ring=ring, algorithm="start-sync", **kwargs
    )


class TestSyncAnd:
    @given(st.integers(0, 10_000), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent([_and_spec(rng) for _ in range(batch)])

    def test_exhaustive_small_rings(self):
        import itertools

        specs = []
        for n in (2, 3, 4):
            for inputs in itertools.product((0, 1), repeat=n):
                for orient in itertools.product((0, 1), repeat=n):
                    ring = RingConfiguration(
                        inputs=tuple(inputs), orientations=tuple(orient)
                    )
                    specs.append(
                        RunSpec.make(
                            engine="sync-batch", ring=ring, algorithm="sync-and"
                        )
                    )
        assert_batch_equivalent(specs)


class TestStartSync:
    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent([_start_spec(rng) for _ in range(batch)])


class TestMixedBatches:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_both_algorithms_one_batch(self, seed):
        rng = random.Random(seed)
        specs = []
        for _ in range(rng.randint(2, 6)):
            specs.append(
                _and_spec(rng) if rng.random() < 0.5 else _start_spec(rng)
            )
        assert_batch_equivalent(specs)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_nontermination_parity_at_tight_budgets(self, seed):
        """Every spec starved: errors must match message-for-message."""
        rng = random.Random(seed)
        specs = []
        for _ in range(4):
            spec = _and_spec(rng) if rng.random() < 0.5 else _start_spec(rng)
            specs.append(spec.with_(budget=rng.randint(1, 3)))
        assert_batch_equivalent(specs)
