"""Batch engine vs generator engine: byte-identical results, property-style.

The vectorized engine's whole contract is that batching is invisible:
for every supported spec, the per-run :class:`RunResult` — outputs,
``TraceStats`` (messages/bits/per-cycle histogram), cycles, halt times —
pickles to the same bytes as ``run_synchronous``'s, and a run that
exhausts its budget raises a ``NonTerminationError`` with the identical
message.  Hypothesis drives random ring sizes, inputs, orientations,
wake-up schedules and (sometimes starving) budgets through both engines,
always with several specs per batch so padding and cross-run isolation
are exercised too.
"""

from __future__ import annotations

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import run_batch_outcomes
from repro.core import RingConfiguration
from repro.runtime import RunSpec, execute


def reference_outcome(spec: RunSpec):
    """Run the generator engine, capturing the result or the failure."""
    try:
        return ("ok", pickle.dumps(execute(spec.with_(engine="sync"))))
    except Exception as error:  # noqa: BLE001 - equivalence includes failures
        return ("error", type(error).__name__, str(error))


def batch_outcome(outcome):
    if isinstance(outcome, BaseException):
        return ("error", type(outcome).__name__, str(outcome))
    return ("ok", pickle.dumps(outcome))


def assert_batch_equivalent(specs):
    outcomes = run_batch_outcomes(specs)
    for spec, outcome in zip(specs, outcomes):
        assert batch_outcome(outcome) == reference_outcome(spec)


def _and_spec(rng: random.Random) -> RunSpec:
    n = rng.randint(2, 12)
    ring = RingConfiguration(
        inputs=tuple(rng.randint(0, 1) for _ in range(n)),
        orientations=tuple(rng.randint(0, 1) for _ in range(n)),
    )
    kwargs = {}
    if rng.random() < 0.5:
        kwargs["wakeup"] = tuple(rng.randint(0, 4) for _ in range(n))
    if rng.random() < 0.3:
        kwargs["budget"] = rng.randint(1, 2 * n + 4)  # sometimes starving
    return RunSpec.make(
        engine="sync-batch", ring=ring, algorithm="sync-and", **kwargs
    )


def _start_spec(rng: random.Random) -> RunSpec:
    n = rng.randint(2, 10)
    ring = RingConfiguration(
        inputs=tuple(0 for _ in range(n)),
        orientations=tuple(rng.randint(0, 1) for _ in range(n)),
    )
    kwargs = {}
    if rng.random() < 0.6:
        kwargs["wakeup"] = tuple(rng.randint(0, 5) for _ in range(n))
    if rng.random() < 0.3:
        kwargs["budget"] = rng.randint(1, 3 * n + 8)
    return RunSpec.make(
        engine="sync-batch", ring=ring, algorithm="start-sync", **kwargs
    )


def _fig2_spec(rng: random.Random, algorithm: str) -> RunSpec:
    """Within the batch envelope: oriented ring, plain-int inputs, no wakeup.

    Inputs mix small bits (the realistic case) with negative and huge
    ints so label accumulation and bit accounting are stressed beyond
    the int32 lanes the engine uses for everything *except* tokens.
    """
    n = rng.randint(2, 10)
    pool = (0, 1, 1, 0, 2, 7, -3, 2**40)
    ring = RingConfiguration.oriented(
        tuple(rng.choice(pool) for _ in range(n))
    )
    kwargs = {}
    if rng.random() < 0.3:
        kwargs["budget"] = rng.randint(1, 4 * n + 8)  # sometimes starving
    return RunSpec.make(
        engine="sync-batch", ring=ring, algorithm=algorithm, **kwargs
    )


def _quasi_spec(rng: random.Random) -> RunSpec:
    n = rng.randint(2, 10)
    ring = RingConfiguration(
        inputs=tuple(rng.randint(0, 1) for _ in range(n)),
        orientations=tuple(rng.randint(0, 1) for _ in range(n)),
    )
    kwargs = {}
    if rng.random() < 0.3:
        kwargs["budget"] = rng.randint(1, 4 * n + 8)
    return RunSpec.make(
        engine="sync-batch", ring=ring, algorithm="quasi-orientation", **kwargs
    )


def _chang_roberts_spec(rng: random.Random) -> RunSpec:
    n = rng.randint(2, 10)
    if rng.random() < 0.4:
        # Small label pool: duplicates are likely, which is where the
        # halting/forwarding tie-break logic earns its keep.
        labels = tuple(rng.randint(0, 3) for _ in range(n))
    else:
        labels = tuple(rng.randint(0, 2**30 - 1) for _ in range(n))
    ring = RingConfiguration.oriented(labels)
    kwargs = {}
    if rng.random() < 0.3:
        kwargs["budget"] = rng.randint(1, 3 * n + 8)
    return RunSpec.make(
        engine="sync-batch", ring=ring, algorithm="chang-roberts-sync", **kwargs
    )


class TestSyncAnd:
    @given(st.integers(0, 10_000), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent([_and_spec(rng) for _ in range(batch)])

    def test_exhaustive_small_rings(self):
        import itertools

        specs = []
        for n in (2, 3, 4):
            for inputs in itertools.product((0, 1), repeat=n):
                for orient in itertools.product((0, 1), repeat=n):
                    ring = RingConfiguration(
                        inputs=tuple(inputs), orientations=tuple(orient)
                    )
                    specs.append(
                        RunSpec.make(
                            engine="sync-batch", ring=ring, algorithm="sync-and"
                        )
                    )
        assert_batch_equivalent(specs)


class TestStartSync:
    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent([_start_spec(rng) for _ in range(batch)])


class TestFig2InputDistribution:
    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent(
            [_fig2_spec(rng, "fig2-input-distribution") for _ in range(batch)]
        )

    def test_exhaustive_small_bit_rings(self):
        import itertools

        specs = []
        for n in (2, 3, 4, 5):
            for inputs in itertools.product((0, 1), repeat=n):
                specs.append(
                    RunSpec.make(
                        engine="sync-batch",
                        ring=RingConfiguration.oriented(tuple(inputs)),
                        algorithm="fig2-input-distribution",
                    )
                )
        assert_batch_equivalent(specs)


class TestFig2Unidirectional:
    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent(
            [_fig2_spec(rng, "fig2-unidirectional") for _ in range(batch)]
        )

    def test_exhaustive_small_bit_rings(self):
        import itertools

        specs = []
        for n in (2, 3, 4, 5):
            for inputs in itertools.product((0, 1), repeat=n):
                specs.append(
                    RunSpec.make(
                        engine="sync-batch",
                        ring=RingConfiguration.oriented(tuple(inputs)),
                        algorithm="fig2-unidirectional",
                    )
                )
        assert_batch_equivalent(specs)


class TestQuasiOrientation:
    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent([_quasi_spec(rng) for _ in range(batch)])

    def test_exhaustive_small_orientation_rings(self):
        import itertools

        specs = []
        for n in (2, 3, 4, 5):
            for orient in itertools.product((0, 1), repeat=n):
                specs.append(
                    RunSpec.make(
                        engine="sync-batch",
                        ring=RingConfiguration(
                            inputs=(0,) * n, orientations=tuple(orient)
                        ),
                        algorithm="quasi-orientation",
                    )
                )
        assert_batch_equivalent(specs)


class TestChangRobertsSync:
    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_batches(self, seed, batch):
        rng = random.Random(seed)
        assert_batch_equivalent([_chang_roberts_spec(rng) for _ in range(batch)])

    def test_worst_case_decreasing_labels(self):
        specs = [
            RunSpec.make(
                engine="sync-batch",
                ring=RingConfiguration.oriented(
                    tuple((n - 1 - i) % n for i in range(n))
                ),
                algorithm="chang-roberts-sync",
            )
            for n in range(2, 12)
        ]
        assert_batch_equivalent(specs)


class TestMixedBatches:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_both_algorithms_one_batch(self, seed):
        rng = random.Random(seed)
        specs = []
        for _ in range(rng.randint(2, 6)):
            specs.append(
                _and_spec(rng) if rng.random() < 0.5 else _start_spec(rng)
            )
        assert_batch_equivalent(specs)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_all_programs_one_batch(self, seed):
        """Token-carrying and unit-bits programs share one batch call."""
        rng = random.Random(seed)
        builders = (
            _and_spec,
            _start_spec,
            lambda r: _fig2_spec(r, "fig2-input-distribution"),
            lambda r: _fig2_spec(r, "fig2-unidirectional"),
            _quasi_spec,
            _chang_roberts_spec,
        )
        specs = [rng.choice(builders)(rng) for _ in range(rng.randint(3, 8))]
        assert_batch_equivalent(specs)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_nontermination_parity_at_tight_budgets(self, seed):
        """Every spec starved: errors must match message-for-message."""
        rng = random.Random(seed)
        specs = []
        for _ in range(4):
            spec = _and_spec(rng) if rng.random() < 0.5 else _start_spec(rng)
            specs.append(spec.with_(budget=rng.randint(1, 3)))
        assert_batch_equivalent(specs)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_token_program_budget_starvation(self, seed):
        """Starved token-carrying runs raise the generator's exact error."""
        rng = random.Random(seed)
        builders = (
            lambda r: _fig2_spec(r, "fig2-input-distribution"),
            lambda r: _fig2_spec(r, "fig2-unidirectional"),
            _quasi_spec,
            _chang_roberts_spec,
        )
        specs = [
            rng.choice(builders)(rng).with_(budget=rng.randint(1, 4))
            for _ in range(4)
        ]
        assert_batch_equivalent(specs)


class TestEnvelopeFallback:
    """Out-of-envelope specs fall outside ``supports_batch``.

    Two flavors: shapes the generator *does* support (bool inputs —
    sweep callers downgrade these to ``engine='sync'`` and keep going)
    and shapes neither engine supports (unoriented rings, staggered
    wake-ups — the batch envelope mirrors the generator's real limits,
    so nothing runnable is ever rejected).
    """

    def test_bool_inputs_fall_back_to_generator(self):
        from repro.batch import supports_batch

        ring = RingConfiguration.oriented((True, False, True))
        spec = RunSpec.make(
            engine="sync-batch", ring=ring, algorithm="fig2-input-distribution"
        )
        assert not supports_batch(spec)
        result = execute(spec.with_(engine="sync"))
        assert len(result.outputs) == 3

    def test_envelope_mirrors_generator_limits(self):
        import pytest

        from repro.batch import supports_batch
        from repro.core.errors import ProtocolError

        unsupported = [
            RunSpec.make(
                engine="sync-batch",
                ring=RingConfiguration(
                    inputs=(1, 0, 1), orientations=(0, 1, 0)
                ),
                algorithm="fig2-input-distribution",
            ),
            RunSpec.make(
                engine="sync-batch",
                ring=RingConfiguration.oriented((2, 0, 1)),
                algorithm="chang-roberts-sync",
                wakeup=(0, 1, 2),
            ),
        ]
        for spec in unsupported:
            assert not supports_batch(spec)
            with pytest.raises(ProtocolError):
                execute(spec.with_(engine="sync"))
