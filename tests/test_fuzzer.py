"""End-to-end tests for the schedule-fuzzing harness (`repro.faults`).

The centerpiece is the planted-bug test: a throwaway algorithm with a
deliberate schedule-dependent output is handed to the fuzzer, which must
find the bug, shrink the witness to a locally minimal failing prefix,
and certify that ``(seed, trace)`` replays it byte-identically.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asynch import ReplayAdversary, RoundRobinScheduler, run_asynchronous
from repro.asynch.process import AsyncProcess
from repro.core import RingConfiguration
from repro.faults import (
    FuzzCase,
    FuzzTarget,
    ReplayDivergence,
    ReplayScheduler,
    ScheduleTrace,
    default_sync_targets,
    default_targets,
    run_case,
    run_fuzz,
    run_sync_corpus,
    sync_target_by_name,
    target_by_name,
)
from repro.faults.report import report_json
from repro.__main__ import main


class Racy(AsyncProcess):
    """The planted bug: output depends on message *arrival order*."""

    def __init__(self, inp, n):
        super().__init__(inp, n)
        self.got = []

    def on_start(self, ctx):
        ctx.send_both(self.input)

    def on_message(self, ctx, port, payload):
        self.got.append(payload)
        if len(self.got) == 2:
            ctx.halt(tuple(self.got))  # unsorted: schedule-dependent


def _distinct_ring(n: int, rng: random.Random) -> RingConfiguration:
    labels = list(range(n))
    rng.shuffle(labels)
    return RingConfiguration.oriented(labels)


PLANTED = FuzzTarget(
    name="planted-racy",
    factory=Racy,
    make_config=_distinct_ring,
    sizes=(4, 5),
    description="throwaway algorithm with a schedule-dependent output",
)


def _planted_report(seed: int = 3):
    return run_fuzz(
        seed,
        targets=(PLANTED,),
        sizes=(4,),
        profiles=("none",),
        cases_per_campaign=12,
    )


class TestPlantedBug:
    def test_fuzzer_finds_shrinks_and_certifies(self):
        report = _planted_report()
        assert report["totals"]["violations"] >= 1
        violations = [
            v for c in report["campaigns"] for v in c["violations"]
        ]
        assert all(v["kind"] == "wrong-output" for v in violations)
        for v in violations:
            full = ScheduleTrace.from_json(v["trace"])
            minimized = ScheduleTrace.from_json(v["minimized"]["trace"])
            assert len(minimized) <= len(full)
            assert v["minimized"]["reproduced"] is True
            assert v["minimized"]["replay_deterministic"] is True
            assert v["scheduler_seed"] is not None

    def test_minimized_witness_replays_byte_identically(self):
        report = _planted_report()
        violation = next(
            v for c in report["campaigns"] for v in c["violations"]
        )
        n = 4
        trace = ScheduleTrace.from_json(violation["minimized"]["trace"])
        # (seed, trace) is the whole witness: the case seed regenerates
        # the ring, the trace pins every scheduling decision.
        config = _distinct_ring(n, random.Random(violation["case_seed"]))
        reference = run_asynchronous(config, Racy, scheduler=RoundRobinScheduler())

        def replay():
            return run_asynchronous(
                config,
                Racy,
                scheduler=ReplayScheduler(trace.choices),
                adversary=ReplayAdversary(trace.actions, trace.crashes),
                keep_log=True,
            )

        first, second = replay(), replay()
        assert first.outputs == second.outputs
        assert first.stats.log == second.stats.log
        assert first.stats.per_cycle == second.stats.per_cycle
        assert first.outputs != reference.outputs  # still the bug

    def test_minimized_witness_is_locally_minimal(self):
        report = _planted_report()
        violation = next(
            v for c in report["campaigns"] for v in c["violations"]
        )
        trace = ScheduleTrace.from_json(violation["minimized"]["trace"])
        assert len(trace) >= 1
        config = _distinct_ring(4, random.Random(violation["case_seed"]))
        reference = run_asynchronous(config, Racy, scheduler=RoundRobinScheduler())
        shorter = trace.truncated(len(trace) - 1)
        result = run_asynchronous(
            config,
            Racy,
            scheduler=ReplayScheduler(shorter.choices),
            adversary=ReplayAdversary(shorter.actions, shorter.crashes),
        )
        # One event less and the failure is gone: prefix is minimal.
        assert result.outputs == reference.outputs


@pytest.mark.parametrize("target", default_targets(), ids=lambda t: t.name)
@settings(max_examples=8, deadline=None)
@given(case_seed=st.integers(min_value=0, max_value=2**63 - 1))
def test_fault_free_fuzz_matches_round_robin(target, case_seed):
    """§2's ∀-schedule quantifier: every registered algorithm must give
    the round-robin reference output under any fault-free schedule."""
    n = target.sizes[0]
    record = run_case(target, FuzzCase(target.name, n, case_seed, "none"))
    assert record["status"] == "ok"


class TestReportDeterminism:
    def test_same_seed_byte_identical(self):
        kwargs = dict(
            targets=(target_by_name("and"),),
            sizes=(3,),
            profiles=("none", "drop"),
            cases_per_campaign=3,
        )
        a = run_fuzz(17, **kwargs)
        b = run_fuzz(17, **kwargs)
        assert report_json(a) == report_json(b)

    def test_report_shape(self):
        report = run_fuzz(
            17,
            targets=(target_by_name("input-distribution"),),
            sizes=(3,),
            profiles=("none",),
            cases_per_campaign=2,
        )
        assert report["schema"] == 1
        assert report["seed"] == 17
        assert report["totals"]["cases"] == 2
        assert "input-distribution" in report["targets"]
        (campaign,) = report["campaigns"]
        assert campaign["strict"] is True
        assert campaign["ok"] + campaign["tolerated_failures"] + len(
            campaign["violations"]
        ) == campaign["cases"]


class TestTraceRoundTrip:
    def test_json_round_trip(self):
        trace = ScheduleTrace(
            choices=(1, 0, 2), actions=(0, 1, 2), crashes=((3, 1),)
        )
        assert ScheduleTrace.from_json(trace.to_json()) == trace

    def test_truncated_keeps_crashes(self):
        trace = ScheduleTrace(choices=(1, 0, 2), actions=(0, 1, 2), crashes=((3, 1),))
        cut = trace.truncated(1)
        assert cut.choices == (1,)
        assert cut.actions == (0,)
        assert cut.crashes == trace.crashes

    def test_empty_trace_replays_as_round_robin(self):
        target = target_by_name("and")
        config = target.make_config(4, random.Random(5))
        a = run_asynchronous(
            config, target.factory, scheduler=ReplayScheduler(()), keep_log=True
        )
        b = run_asynchronous(
            config, target.factory, scheduler=RoundRobinScheduler(), keep_log=True
        )
        assert a.outputs == b.outputs
        assert a.stats.log == b.stats.log

    def test_divergent_replay_raises(self):
        target = target_by_name("and")
        config = target.make_config(3, random.Random(5))
        with pytest.raises(ReplayDivergence):
            run_asynchronous(
                config, target.factory, scheduler=ReplayScheduler((999,))
            )


class TestRegistry:
    def test_target_by_name_round_trips(self):
        for target in default_targets():
            assert target_by_name(target.name) is not None

    def test_unknown_target_rejected(self):
        from repro.core import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown fuzz target"):
            target_by_name("definitely-not-a-target")


class TestCli:
    def test_fuzz_smoke_deterministic(self, tmp_path):
        argv = [
            "fuzz",
            "--seed",
            "7",
            "--targets",
            "and",
            "--sizes",
            "3",
            "--faults",
            "none",
            "drop",
            "--cases",
            "2",
        ]
        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--output", str(out1)]) == 0
        assert main(argv + ["--output", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()


class TestWitnessEvents:
    """Violations carry the minimized witness's repro.obs event stream."""

    def test_violation_records_attach_events(self):
        from repro.obs import EVENT_KINDS, event_from_json

        report = _planted_report()
        violations = [v for c in report["campaigns"] for v in c["violations"]]
        assert violations
        for violation in violations:
            rows = violation["events"]
            assert rows, "reproduced violation should carry its event stream"
            events = [event_from_json(row) for row in rows]
            assert [e.seq for e in events] == list(range(len(events)))
            assert all(e.kind in EVENT_KINDS for e in events)
            # The stream is a complete replay of the witness: transport
            # conservation holds at the point the run ended.
            kinds = {k: sum(1 for e in events if e.kind == k) for k in EVENT_KINDS}
            assert (
                kinds["send"] + kinds["duplicate"]
                >= kinds["deliver"] + kinds["drop"]
            )

    def test_witness_events_are_deterministic(self):
        first = _planted_report()
        second = _planted_report()
        events_a = [
            v["events"] for c in first["campaigns"] for v in c["violations"]
        ]
        events_b = [
            v["events"] for c in second["campaigns"] for v in c["violations"]
        ]
        assert events_a == events_b


class TestSyncCorpus:
    """The fault-free synchronous corpus rides the batched sweep path."""

    def test_engine_knob_is_invisible_in_the_report(self):
        """auto (sync-batch where supported) vs forced sync: same bytes."""
        import json

        auto = run_sync_corpus(seed=11, engine="auto")
        forced = run_sync_corpus(seed=11, engine="sync")
        assert json.dumps(auto, sort_keys=True) == json.dumps(
            forced, sort_keys=True
        )

    def test_every_default_target_runs_clean(self):
        report = run_sync_corpus(seed=7)
        assert report["violations"] == 0
        assert set(report["targets"]) == {
            t.name for t in default_sync_targets()
        }
        by_target = {c["target"] for c in report["campaigns"]}
        assert by_target == set(report["targets"])
        for campaign in report["campaigns"]:
            assert campaign["ok"] == len(campaign["cases"])

    def test_invariant_checker_catches_wrong_outputs(self):
        """A deliberately broken checker proves the wiring can fail."""
        import dataclasses

        target = sync_target_by_name("sync-and")
        broken = dataclasses.replace(
            target, check=lambda config, result: "planted mismatch"
        )
        report = run_sync_corpus(seed=5, targets=(broken,))
        assert report["violations"] == report["cases"] > 0
        violation = report["campaigns"][0]["cases"][0]["violation"]
        assert violation["kind"] == "invariant"
        assert violation["detail"] == "planted mismatch"
        assert "config" in violation

    def test_rejects_unknown_engine(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="'auto' or 'sync'"):
            run_sync_corpus(seed=1, engine="sync-batch")

    def test_corpus_section_reaches_run_fuzz_report(self):
        report = run_fuzz(
            seed=13,
            targets=(target_by_name("and"),),
            sizes=(3,),
            profiles=("none",),
            cases_per_campaign=1,
            sync_cases_per_campaign=1,
        )
        assert report["totals"]["sync_cases"] > 0
        assert report["totals"]["sync_violations"] == 0
        assert set(report["sync_targets"]) == {
            t.name for t in default_sync_targets()
        }
        assert report["sync_campaigns"]
