"""Theorems 5.4 and 6.7: random computable functions are expensive."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.lowerbounds import (
    estimate_theorem_54,
    estimate_theorem_67,
    theorem_54_message_threshold,
    theorem_54_probability_bound,
    theorem_67_message_threshold,
    theorem_67_probability_bound,
    thue_morse_image_classes,
)


class TestClosedForms:
    def test_54_bound_decays(self):
        assert theorem_54_probability_bound(20) < theorem_54_probability_bound(10)
        assert theorem_54_probability_bound(40) < 1e-20

    def test_54_threshold(self):
        assert theorem_54_message_threshold(10) == 25.0

    def test_67_bound_decays(self):
        assert theorem_67_probability_bound(256) < theorem_67_probability_bound(64)

    def test_67_threshold_positive_for_large_n(self):
        assert theorem_67_message_threshold(256) > 0


class TestMonteCarlo54:
    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_estimate_within_bound(self, n):
        estimate = estimate_theorem_54(n, trials=300, seed=1)
        assert estimate.within_bound
        assert 0 <= estimate.estimate <= 1

    def test_small_n_functions_often_cheap_eligible(self):
        """n=4 has only a couple of relevant classes: bound is weak there."""
        estimate = estimate_theorem_54(4, trials=200, seed=2)
        assert estimate.bound > 0.5  # the theorem says nothing useful yet

    def test_odd_n_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_theorem_54(5, trials=10)

    def test_estimates_shrink_with_n(self):
        e6 = estimate_theorem_54(6, trials=400, seed=3)
        e12 = estimate_theorem_54(12, trials=400, seed=3)
        assert e12.hits <= e6.hits


class TestThueMorseClasses:
    def test_n16(self):
        classes = thue_morse_image_classes(16)
        # 2^√16 = 16 images; at this tiny size rotations merge most of
        # them (the theorem's count 2^√n/n = 1 is trivially satisfied).
        assert 2 <= len(classes) <= 16
        assert all(len(word) == 16 for word in classes)

    def test_requires_power_of_four(self):
        with pytest.raises(ConfigurationError):
            thue_morse_image_classes(20)

    def test_monte_carlo_67(self):
        estimate = estimate_theorem_67(16, trials=300, seed=4)
        assert estimate.within_bound
