"""Cycle-budget semantics: ``max_cycles=b`` permits exactly ``b`` cycles.

Regression tests for the off-by-one where ``run_synchronous`` raised
only when ``cycle > budget``, silently granting ``budget + 1`` cycles
and misreporting the bound in the ``NonTerminationError`` message.  Both
cycle-driven engines now agree on the documented semantics: a budget of
``b`` permits ``b`` cycles — indices ``0..b-1`` for the synchronous
engine, delivery cycles ``1..b`` for the synchronized-adversary engine —
so the minimal sufficient budget is an exact, testable number.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.async_input_distribution import AsyncInputDistribution
from repro.algorithms.sync_and import SyncAnd
from repro.asynch import run_async_synchronized
from repro.core import RingConfiguration
from repro.core.errors import NonTerminationError
from repro.sync import run_synchronous

from reference_engines import run_synchronous_reference


def _ring(n: int, seed: int = 0) -> RingConfiguration:
    return RingConfiguration.random(n, random.Random(seed), oriented=True)


def _sync(config, max_cycles=None):
    return run_synchronous(config, SyncAnd, max_cycles=max_cycles)


def _sync_reference(config, max_cycles=None):
    return run_synchronous_reference(config, SyncAnd, max_cycles=max_cycles)


def _async_synchronized(config, max_cycles=None):
    return run_async_synchronized(
        config, AsyncInputDistribution, max_cycles=max_cycles
    )


# (runner, minimal budget as a function of the unbudgeted result) —
# the sync engine's cycles are 0-indexed (a run whose last cycle index
# is c used c+1 cycles); the synchronized engine counts delivery cycles
# directly.
ENGINES = [
    pytest.param(_sync, lambda result: result.cycles + 1, id="sync"),
    pytest.param(_sync_reference, lambda result: result.cycles + 1,
                 id="sync-reference"),
    pytest.param(_async_synchronized, lambda result: result.cycles,
                 id="async-synchronized"),
]


@pytest.mark.parametrize("run,minimal", ENGINES)
@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_minimal_budget_exactly_suffices(run, minimal, n):
    config = _ring(n, seed=n)
    need = minimal(run(config))
    result = run(config, max_cycles=need)  # exactly enough: completes
    assert result.outputs  # a real, finished run
    with pytest.raises(NonTerminationError) as err:
        run(config, max_cycles=need - 1)
    # The message reports the bound that was actually enforced.
    assert f"cycle budget {need - 1} exhausted" in str(err.value)


@pytest.mark.parametrize("n", [3, 6])
def test_sync_engines_agree_at_every_budget(n):
    """Optimized and reference sync engines fail/succeed identically."""
    config = _ring(n, seed=n + 17)
    need = _sync(config).cycles + 1
    for budget in range(1, need + 2):
        try:
            got = ("ok", _sync(config, max_cycles=budget).outputs)
        except NonTerminationError as error:
            got = ("err", str(error))
        try:
            want = ("ok", _sync_reference(config, max_cycles=budget).outputs)
        except NonTerminationError as error:
            want = ("err", str(error))
        assert got == want


def test_sync_budget_message_lists_laggards():
    config = RingConfiguration.oriented((1, 1, 1, 1))
    with pytest.raises(NonTerminationError, match=r"still running: \[0, 1, 2, 3\]"):
        run_synchronous(config, SyncAnd, max_cycles=1)
