"""Cross-module property tests: the model-level invariants of the paper.

These tie Lemma 3.1, Theorem 3.4, and the algorithms together: anonymous
algorithms cannot distinguish renamed rings, schedules cannot change
asynchronous outputs, and equal neighborhoods force equal behavior.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    XOR,
    compute_and_sync,
    compute_async,
    distribute_inputs_async,
    distribute_inputs_sync,
    quasi_orient,
)
from repro.asynch import RandomScheduler
from repro.core import RingConfiguration, RingView

ring_sizes = st.integers(3, 9)


def seeded_ring(n: int, seed: int, oriented: bool) -> RingConfiguration:
    return RingConfiguration.random(n, random.Random(seed), oriented=oriented)


class TestRotationEquivariance:
    """Renaming processors (rotation) permutes outputs identically."""

    @given(ring_sizes, st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_sync_and(self, n, seed, shift):
        config = seeded_ring(n, seed, oriented=True)
        base = compute_and_sync(config)
        rotated = compute_and_sync(config.rotated(shift))
        assert rotated.outputs == base.outputs[shift % n :] + base.outputs[: shift % n]
        assert rotated.stats.messages == base.stats.messages

    @given(ring_sizes, st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_sync_distribution(self, n, seed, shift):
        config = seeded_ring(n, seed, oriented=True)
        base = distribute_inputs_sync(config)
        rotated = distribute_inputs_sync(config.rotated(shift))
        assert (
            rotated.outputs == base.outputs[shift % n :] + base.outputs[: shift % n]
        )

    @given(ring_sizes, st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_orientation_messages_invariant(self, n, seed, shift):
        config = seeded_ring(n, seed, oriented=False)
        base = quasi_orient(config)
        rotated = quasi_orient(config.rotated(shift))
        assert rotated.stats.messages == base.stats.messages


class TestLemma31:
    """Equal neighborhoods ⇒ equal outputs, on the real algorithms."""

    @given(ring_sizes, st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_and_outputs_respect_neighborhood_classes(self, n, seed):
        config = seeded_ring(n, seed, oriented=True)
        result = compute_and_sync(config)
        radius = n  # deep enough to cover the whole run
        classes = {}
        for i in range(n):
            classes.setdefault(config.neighborhood(i, radius), set()).add(
                result.outputs[i]
            )
        assert all(len(outputs) == 1 for outputs in classes.values())

    @given(ring_sizes, st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_orientation_outputs_respect_neighborhood_classes(self, n, seed):
        config = seeded_ring(n, seed, oriented=False)
        result = quasi_orient(config)
        classes = {}
        for i in range(n):
            classes.setdefault(config.neighborhood(i, n), set()).add(
                result.outputs[i]
            )
        assert all(len(outputs) == 1 for outputs in classes.values())


class TestScheduleIndependence:
    @given(ring_sizes, st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_async_distribution(self, n, seed, sched_seed):
        config = seeded_ring(n, seed, oriented=False)
        a = distribute_inputs_async(config, scheduler=RandomScheduler(sched_seed))
        b = distribute_inputs_async(config, scheduler=RandomScheduler(sched_seed + 1))
        assert a.outputs == b.outputs
        assert a.stats.messages == b.stats.messages  # count is schedule-free here


class TestViewsAreGroundTruth:
    @given(ring_sizes, st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_async_views(self, n, seed):
        config = seeded_ring(n, seed, oriented=False)
        result = distribute_inputs_async(config)
        for i in range(n):
            assert result.outputs[i] == RingView.from_configuration(config, i)

    @given(ring_sizes, st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_function_values_consistent(self, n, seed):
        config = seeded_ring(n, seed, oriented=True)
        assert (
            compute_async(config, XOR).unanimous_output()
            == XOR.on_inputs(config.inputs)
        )
