"""Unit tests for the vectorized batch engine (``repro.batch``).

Known-answer outputs, mixed-size padding, spec validation, the
``execute`` dispatch, and the ``Runner.run_specs`` fast path (grouping,
caching, dedupe).  The statistical heavy lifting — byte-identical
results against ``run_synchronous`` on random configurations — lives in
``test_batch_equivalence.py``; these tests pin the plumbing around it.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.batch import run_batch, run_batch_outcomes, supports_batch
from repro.core import RingConfiguration
from repro.core.errors import ConfigurationError, NonTerminationError
from repro.runtime import ResultCache, Runner, RunSpec, execute


def _and_spec(inputs, **kwargs) -> RunSpec:
    return RunSpec.make(
        engine="sync-batch",
        ring=RingConfiguration.oriented(tuple(inputs)),
        algorithm="sync-and",
        **kwargs,
    )


def _start_spec(n: int, **kwargs) -> RunSpec:
    return RunSpec.make(
        engine="sync-batch",
        ring=RingConfiguration.oriented(tuple(0 for _ in range(n))),
        algorithm="start-sync",
        **kwargs,
    )


class TestKnownAnswers:
    def test_all_ones_ring_computes_one(self):
        result = run_batch([_and_spec([1, 1, 1, 1, 1])])[0]
        assert result.outputs == (1, 1, 1, 1, 1)

    def test_single_zero_computes_zero(self):
        result = run_batch([_and_spec([1, 1, 0, 1])])[0]
        assert result.outputs == (0, 0, 0, 0)

    def test_outputs_are_plain_python_ints(self):
        result = run_batch([_and_spec([1, 1, 1])])[0]
        assert all(type(v) is int for v in result.outputs)
        assert all(type(v) is int for v in result.halt_times)

    def test_start_sync_agreement(self):
        result = run_batch([_start_spec(6, wakeup=(0, 2, 1, 3, 2, 1))])[0]
        assert len(set(result.outputs)) == 1  # all agree on the count


class TestBatching:
    def test_mixed_sizes_and_algorithms_in_one_call(self):
        specs = [
            _and_spec([1, 1]),
            _start_spec(7),
            _and_spec([0, 1, 1, 1, 1, 1, 1, 1]),
            _start_spec(3),
        ]
        results = run_batch(specs)
        for spec, result in zip(specs, results):
            reference = execute(spec.with_(engine="sync"))
            assert pickle.dumps(result) == pickle.dumps(reference)

    def test_padding_rows_do_not_leak(self):
        """A small ring batched next to a big one behaves as if alone."""
        small, big = _and_spec([1, 1]), _and_spec([1] * 9)
        together = run_batch([small, big])[0]
        alone = run_batch([small])[0]
        assert pickle.dumps(together) == pickle.dumps(alone)

    def test_outcomes_isolate_failures(self):
        good = _and_spec([1, 1, 1])
        starved = _and_spec([1, 1, 1, 1], budget=1)
        outcomes = run_batch_outcomes([good, starved, good])
        assert isinstance(outcomes[1], NonTerminationError)
        assert pickle.dumps(outcomes[0]) == pickle.dumps(outcomes[2])

    def test_run_batch_raises_earliest_error(self):
        specs = [
            _and_spec([1, 1, 1], budget=1),  # earliest: budget failure
            _and_spec([1, 1]),
        ]
        with pytest.raises(NonTerminationError, match="cycle budget 1"):
            run_batch(specs)


class TestValidation:
    def test_supports_batch_predicate(self):
        assert supports_batch(_and_spec([1, 1, 1]))
        async_spec = RunSpec.make(
            engine="async",
            ring=RingConfiguration.random(4, random.Random(0)),
            algorithm="input-distribution",
        )
        assert not supports_batch(async_spec)

    def test_algorithm_without_batch_program_rejected(self, monkeypatch):
        # Every registered sync algorithm now ships a batch program, so
        # strip one temporarily to keep the "no batch program" path pinned.
        import dataclasses

        from repro.runtime import registry as registry_module

        entry = registry_module.algorithm("fig2-input-distribution")
        monkeypatch.setitem(
            registry_module._REGISTRY,
            "fig2-input-distribution",
            dataclasses.replace(entry, batch_program=None),
        )
        spec = RunSpec.make(
            engine="sync",  # spec itself is valid on the generator engine
            ring=RingConfiguration.oriented((0, 1, 0)),
            algorithm="fig2-input-distribution",
        )
        assert not supports_batch(spec)
        with pytest.raises(ConfigurationError, match="no batch program"):
            run_batch([spec])

    def test_keep_log_and_record_rejected_at_spec_construction(self):
        with pytest.raises(ConfigurationError, match="neither keep_log nor record"):
            _and_spec([1, 1, 1], keep_log=True)
        with pytest.raises(ConfigurationError, match="neither keep_log nor record"):
            _and_spec([1, 1, 1], record=True)

    def test_algorithm_input_validation_matches_generator(self):
        bad = RunSpec.make(
            engine="sync-batch",
            ring=RingConfiguration.oriented((0, 2, 1)),
            algorithm="sync-and",
        )
        with pytest.raises(ConfigurationError, match="needs 0/1 inputs"):
            run_batch([bad])

    def test_wakeup_length_mismatch_rejected(self):
        from repro.core.errors import SimulationError

        with pytest.raises(SimulationError, match="schedule covers"):
            run_batch([_and_spec([1, 1, 1], wakeup=(0, 1))])


#: Canonical in-envelope ring/kwargs per batched algorithm.  The
#: round-trip test below fails loudly when a new batch_program lands
#: without an entry here — add one and the algorithm is covered.
_CANONICAL_BATCH_SPECS = {
    "sync-and": dict(ring=RingConfiguration.oriented((1, 0, 1, 1))),
    "start-sync": dict(
        ring=RingConfiguration.oriented((0, 0, 0, 0)), wakeup=(0, 2, 1, 3)
    ),
    "fig2-input-distribution": dict(
        ring=RingConfiguration.oriented((1, 0, 0, 1, 1))
    ),
    "fig2-unidirectional": dict(
        ring=RingConfiguration.oriented((0, 1, 1, 0, 1))
    ),
    "quasi-orientation": dict(
        ring=RingConfiguration(
            inputs=(0, 0, 0, 0), orientations=(0, 1, 1, 0)
        )
    ),
    "chang-roberts-sync": dict(ring=RingConfiguration.oriented((3, 1, 0, 2))),
}


class TestRegistryRoundTrip:
    def test_every_batched_entry_round_trips_sync_batch_specs(self):
        from repro.runtime.registry import registered_algorithms

        batched = [e for e in registered_algorithms() if e.batch_program]
        assert len(batched) >= 6
        for entry in batched:
            kwargs = _CANONICAL_BATCH_SPECS.get(entry.name)
            assert kwargs is not None, (
                f"{entry.name} has a batch program but no canonical spec in "
                "_CANONICAL_BATCH_SPECS; add one so the round-trip test "
                "covers it"
            )
            spec = RunSpec.make(
                engine="sync-batch", algorithm=entry.name, **kwargs
            )
            assert supports_batch(spec), entry.name
            result = run_batch([spec])[0]
            reference = execute(spec.with_(engine="sync"))
            assert pickle.dumps(result) == pickle.dumps(reference), entry.name


class TestExecuteDispatch:
    def test_execute_routes_sync_batch(self):
        spec = _and_spec([1, 0, 1])
        assert pickle.dumps(execute(spec)) == pickle.dumps(
            execute(spec.with_(engine="sync"))
        )


class TestRunnerFastPath:
    def _mixed_specs(self):
        return [
            _and_spec([1, 1, 1, 1]),
            RunSpec.make(
                engine="sync",
                ring=RingConfiguration.oriented((1, 0, 1)),
                algorithm="sync-and",
            ),
            _start_spec(5),
            _and_spec([0, 1, 1]),
        ]

    def test_mixed_engines_in_submission_order(self):
        results = Runner().run_specs(self._mixed_specs())
        assert [r.n for r in results] == [4, 3, 5, 3]
        for spec, result in zip(self._mixed_specs(), results):
            reference = execute(spec.with_(engine="sync"))
            assert pickle.dumps(result) == pickle.dumps(reference)

    def test_batched_specs_cache_under_their_digests(self, tmp_path):
        specs = self._mixed_specs()
        first = Runner(cache=ResultCache(tmp_path))
        second = Runner(cache=ResultCache(tmp_path))
        a = first.run_specs(specs)
        assert first.executed == 4
        b = second.run_specs(specs)
        assert second.executed == 0
        assert [pickle.dumps(r) for r in a] == [pickle.dumps(r) for r in b]

    def test_duplicate_batched_specs_dedupe(self, tmp_path):
        spec = _and_spec([1, 1, 1, 1, 1])
        runner = Runner(cache=ResultCache(tmp_path))
        results = runner.run_specs([spec, spec, spec])
        assert runner.executed == 1
        batch = runner.batches[-1]
        assert batch["deduped"] == 2
        assert len({pickle.dumps(r) for r in results}) == 1

    def test_batch_failure_raises_like_per_spec_path(self, tmp_path):
        specs = [_and_spec([1, 1, 1]), _and_spec([1, 1, 1, 1], budget=1)]
        with pytest.raises(NonTerminationError):
            Runner(cache=ResultCache(tmp_path)).run_specs(specs)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_jobs_value_does_not_change_bytes(self, jobs):
        serial = Runner(jobs=1).run_specs(self._mixed_specs())
        other = Runner(jobs=jobs).run_specs(self._mixed_specs())
        assert [pickle.dumps(a) for a in serial] == [
            pickle.dumps(b) for b in other
        ]


class TestMixedTokenAndUnitBatches:
    """Token-carrying and unit-bits programs sharing one run_specs call.

    The batch engine groups specs per program but shares one call; the
    Runner must keep submission order and the bytes must not depend on
    the jobs value or on what else rides in the batch.
    """

    def _specs(self):
        return [
            _and_spec([1, 1, 1, 1, 1, 1]),  # unit-bits, n=6
            RunSpec.make(
                engine="sync-batch",
                ring=RingConfiguration.oriented((1, 0, 0, 1)),
                algorithm="fig2-input-distribution",  # token, n=4
            ),
            _start_spec(9, wakeup=(0, 1, 2, 0, 1, 2, 0, 1, 2)),  # n=9
            RunSpec.make(
                engine="sync-batch",
                ring=RingConfiguration.oriented((4, 2, 0, 1, 3, 6, 5)),
                algorithm="chang-roberts-sync",  # token, n=7
            ),
            RunSpec.make(
                engine="sync-batch",
                ring=RingConfiguration(
                    inputs=(0, 0, 0, 0, 0), orientations=(1, 0, 1, 1, 0)
                ),
                algorithm="quasi-orientation",  # token, n=5
            ),
            _and_spec([1, 1, 0]),  # unit-bits, n=3
            RunSpec.make(
                engine="sync-batch",
                ring=RingConfiguration.oriented((0, 1, 1, 0, 1, 0, 1, 1)),
                algorithm="fig2-unidirectional",  # token, n=8
            ),
        ]

    def test_submission_order_preserved(self):
        results = Runner().run_specs(self._specs())
        assert [r.n for r in results] == [6, 4, 9, 7, 5, 3, 8]

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_bit_identical_to_generator_for_every_jobs(self, jobs):
        specs = self._specs()
        results = Runner(jobs=jobs).run_specs(specs)
        for spec, result in zip(specs, results):
            reference = execute(spec.with_(engine="sync"))
            assert pickle.dumps(result) == pickle.dumps(reference)

    def test_batching_context_does_not_change_bytes(self):
        """Each run is isolated: alone vs in the mixed batch, same bytes."""
        specs = self._specs()
        together = Runner().run_specs(specs)
        alone = [Runner().run_specs([spec])[0] for spec in specs]
        assert [pickle.dumps(a) for a in together] == [
            pickle.dumps(b) for b in alone
        ]
