"""``Runner.map`` in-batch dedupe: one dispatch per unique cache key.

Regression tests for the bugfix where a batch naming the same
``cache_key`` several times executed the task once per mention even with
a cache attached (the put only landed after the whole batch ran).  The
counting stub observes executions from the task's own side; the
telemetry assertions pin that ``executed`` and the ``deduped`` counter
stay truthful.
"""

from __future__ import annotations

import random

import pytest

from repro.core import RingConfiguration
from repro.runtime import ResultCache, Runner, RunSpec, TaskCall, task_digest

#: Bumped by :func:`dedupe_counting_task` — observes real executions.
CALLS = {"count": 0}


def dedupe_counting_task(value: int) -> int:
    CALLS["count"] += 1
    return value * 3


def _call(value: int) -> TaskCall:
    return TaskCall(
        func="test_runner_dedupe:dedupe_counting_task",
        args=(value,),
        cache_key=task_digest("dedupe-stub", value),
    )


class TestMapDedupe:
    def test_duplicates_execute_once(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        CALLS["count"] = 0
        results = runner.map([_call(7), _call(7), _call(7)])
        assert results == [21, 21, 21]
        assert CALLS["count"] == 1
        assert runner.executed == 1

    def test_fanout_preserves_submission_order(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        CALLS["count"] = 0
        results = runner.map([_call(1), _call(2), _call(1), _call(2), _call(1)])
        assert results == [3, 6, 3, 6, 3]
        assert CALLS["count"] == 2

    def test_telemetry_counts_deduped(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        runner.map([_call(4), _call(4), _call(5)])
        batch = runner.batches[0]
        assert batch["tasks"] == 3
        assert batch["executed"] == 2
        assert batch["deduped"] == 1
        assert batch["cache_hits"] == 0
        assert runner.metrics_snapshot()["deduped"] == 1

    def test_second_batch_is_all_cache_hits(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        CALLS["count"] = 0
        runner.map([_call(9), _call(9)])
        runner.map([_call(9), _call(9)])
        assert CALLS["count"] == 1
        second = runner.batches[1]
        assert second["cache_hits"] == 2 and second["deduped"] == 0

    def test_without_cache_no_dedupe(self):
        """No cache ⇒ no content address to dedupe on: duplicates run."""
        CALLS["count"] = 0
        runner = Runner()
        assert runner.map([_call(2), _call(2)]) == [6, 6]
        assert CALLS["count"] == 2
        assert runner.batches[0]["deduped"] == 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_parallel_pool_sees_only_unique_tasks(self, tmp_path, jobs):
        """Dedupe happens before pool dispatch, for every jobs value."""
        runner = Runner(jobs=jobs, cache=ResultCache(tmp_path))
        results = runner.map([_call(v) for v in (1, 1, 2, 2, 3, 3)])
        assert results == [3, 3, 6, 6, 9, 9]
        assert runner.executed == 3


class TestSpecDedupe:
    """The same contract through ``run_specs`` (specs key by digest)."""

    def _spec(self, n: int = 5) -> RunSpec:
        ring = RingConfiguration.random(n, random.Random(n), oriented=True)
        return RunSpec.make(engine="sync", ring=ring, algorithm="sync-and")

    def test_duplicate_specs_execute_once(self, tmp_path):
        import pickle

        runner = Runner(cache=ResultCache(tmp_path))
        spec = self._spec()
        results = runner.run_specs([spec, spec])
        assert runner.executed == 1
        assert pickle.dumps(results[0]) == pickle.dumps(results[1])
