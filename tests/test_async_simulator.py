"""The asynchronous engines: schedules, FIFO, adversary, quiescence."""

from __future__ import annotations

import pytest

from repro.asynch import (
    AsyncProcess,
    GreedyChannelScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    run_async_synchronized,
    run_asynchronous,
)
from repro.core import (
    LEFT,
    ModelViolationError,
    NonTerminationError,
    RIGHT,
    RingConfiguration,
    SimulationError,
)


class PingOnce(AsyncProcess):
    """Send input both ways; halt after two receipts."""

    def __init__(self, inp, n):
        super().__init__(inp, n)
        self.got = []

    def on_start(self, ctx):
        ctx.send_both(self.input)

    def on_message(self, ctx, port, payload):
        self.got.append(payload)
        if len(self.got) == 2:
            ctx.halt(tuple(sorted(self.got)))


class FifoProbe(AsyncProcess):
    """Processor 'S' streams numbers right; others record arrival order."""

    def __init__(self, inp, n):
        super().__init__(inp, n)
        self.seen = []

    def on_start(self, ctx):
        if self.input == "S":
            for i in range(5):
                ctx.send(RIGHT, i)
            ctx.halt(None)

    def on_message(self, ctx, port, payload):
        self.seen.append(payload)
        if len(self.seen) == 5:
            ctx.halt(tuple(self.seen))


class TestGeneralEngine:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [RoundRobinScheduler, GreedyChannelScheduler, lambda: RandomScheduler(1)],
    )
    def test_schedule_independent_outcome(self, scheduler_factory):
        ring = RingConfiguration.oriented([1, 2, 3, 4])
        result = run_asynchronous(ring, PingOnce, scheduler=scheduler_factory())
        assert result.outputs == ((2, 4), (1, 3), (2, 4), (1, 3))

    def test_fifo_order_preserved(self):
        ring = RingConfiguration.oriented(["S", "a"])
        for seed in range(5):
            result = run_asynchronous(ring, FifoProbe, scheduler=RandomScheduler(seed))
            assert result.outputs[1] == (0, 1, 2, 3, 4)

    def test_deadlock_detected(self):
        class NeverHalts(AsyncProcess):
            def on_message(self, ctx, port, payload):  # pragma: no cover
                pass

        with pytest.raises(SimulationError):
            run_asynchronous(RingConfiguration.oriented([0, 0]), NeverHalts)

    def test_event_budget(self):
        class PingPong(AsyncProcess):
            def on_start(self, ctx):
                ctx.send(RIGHT, 0)

            def on_message(self, ctx, port, payload):
                ctx.send(port.opposite, payload + 1)

        with pytest.raises(NonTerminationError):
            run_asynchronous(
                RingConfiguration.oriented([0, 0, 0]), PingPong, max_events=50
            )

    def test_send_after_halt_rejected(self):
        class Bad(AsyncProcess):
            def on_start(self, ctx):
                ctx.halt(1)
                ctx.send(LEFT, 0)

        with pytest.raises(ModelViolationError):
            run_asynchronous(RingConfiguration.oriented([0, 0]), Bad)

    def test_double_halt_rejected(self):
        class Bad(AsyncProcess):
            def on_start(self, ctx):
                ctx.halt(1)
                ctx.halt(2)

        with pytest.raises(ModelViolationError):
            run_asynchronous(RingConfiguration.oriented([0, 0]), Bad)

    def test_message_to_halted_dropped(self):
        class HaltFast(AsyncProcess):
            def __init__(self, inp, n):
                super().__init__(inp, n)
                self.count = 0

            def on_start(self, ctx):
                if self.input == 1:
                    ctx.send_both("x")
                else:
                    ctx.halt("quit")

            def on_message(self, ctx, port, payload):
                self.count += 1
                ctx.halt("ok")

        ring = RingConfiguration.oriented([1, 0, 1])
        result = run_asynchronous(ring, HaltFast)
        assert result.outputs == ("ok", "quit", "ok")

    def test_stats_count_all_sends(self):
        ring = RingConfiguration.oriented([1, 2, 3])
        result = run_asynchronous(ring, PingOnce)
        assert result.stats.messages == 6


class TestSynchronizedAdversary:
    def test_round_structure(self):
        """All starts at cycle 0, all deliveries of a wave share a cycle."""
        ring = RingConfiguration.oriented([1, 2, 3, 4, 5])
        result = run_async_synchronized(ring, PingOnce, keep_log=True)
        assert result.cycles == 1
        assert result.stats.per_cycle == {0: 10}

    def test_left_before_right_order(self):
        class Simple(AsyncProcess):
            def __init__(self, inp, n):
                super().__init__(inp, n)
                self.got = []

            def on_start(self, ctx):
                ctx.send_both("m")

            def on_message(self, ctx, port, payload):
                self.got.append(port)
                if len(self.got) == 2:
                    ctx.halt(tuple(self.got))

        ring = RingConfiguration.oriented([0, 0, 0])
        result = run_async_synchronized(ring, Simple)
        # Theorem 5.1 adversary: left port's arrivals processed first.
        assert all(out == (LEFT, RIGHT) for out in result.outputs)

    def test_forwarding_advances_one_cycle(self):
        class Relay(AsyncProcess):
            """0 emits; everyone else forwards once and halts."""

            def on_start(self, ctx):
                if self.input == "src":
                    ctx.send(RIGHT, 0)

            def on_message(self, ctx, port, payload):
                if self.input == "src":
                    ctx.halt(payload)
                else:
                    ctx.send(port.opposite, payload + 1)
                    ctx.halt(payload)

        ring = RingConfiguration.oriented(["src", "a", "b", "c"])
        result = run_async_synchronized(ring, Relay, keep_log=True)
        # hop i delivered at cycle i+1; 4 messages over 4 cycles.
        assert result.stats.messages == 4
        assert sorted(result.stats.per_cycle.keys()) == [0, 1, 2, 3]
        assert result.outputs[0] == 3  # traveled all the way around

    def test_budget(self):
        class PingPong(AsyncProcess):
            def on_start(self, ctx):
                ctx.send(RIGHT, None)

            def on_message(self, ctx, port, payload):
                ctx.send(port.opposite, payload)

        with pytest.raises(NonTerminationError):
            run_async_synchronized(
                RingConfiguration.oriented([0, 0, 0]), PingPong, max_cycles=20
            )
