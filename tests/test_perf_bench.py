"""The benchmark-regression harness: records, JSON artifact, CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.perf import (
    BENCH_FILENAME,
    SCHEMA_VERSION,
    analysis_speedups,
    default_analysis_workloads,
    default_workloads,
    measure_analysis,
    render_analysis_table,
    render_table,
    run_analysis_bench,
    run_bench,
    write_analysis_bench,
    write_bench,
)


class TestSuiteDefinition:
    def test_workload_names_are_the_contract(self):
        names = [workload.name for workload in default_workloads()]
        assert names == [
            "sync_and",
            "sync_input_distribution",
            "async_input_distribution",
            "async_synchronized",
        ]

    def test_quick_sweeps_are_subsets(self):
        for workload in default_workloads():
            assert set(workload.quick_sizes) <= set(workload.sizes)


class TestRunBench:
    def test_records_have_consistent_throughput(self):
        records = run_bench(quick=True, repeats=1, sizes=(5,))
        assert len(records) == len(default_workloads())
        for record in records:
            assert record.n == 5
            assert record.messages > 0
            assert record.events > 0
            assert record.seconds >= 0
            assert record.events_per_sec > 0
            assert record.messages_per_sec > 0

    def test_async_distribution_counts_n_n_minus_1(self):
        """The flagship workload must measure the exact §4.1 count."""
        (record,) = run_bench(
            quick=True,
            repeats=1,
            sizes=(9,),
            workloads=[
                w for w in default_workloads() if w.name == "async_input_distribution"
            ],
        )
        assert record.messages == 9 * 8
        assert record.events == record.messages

    def test_render_table_mentions_every_workload(self):
        records = run_bench(quick=True, repeats=1, sizes=(4,))
        table = render_table(records)
        for workload in default_workloads():
            assert workload.name in table


class TestArtifact:
    def test_write_bench_schema(self, tmp_path):
        records = run_bench(quick=True, repeats=1, sizes=(4,))
        target = tmp_path / "bench.json"
        written = write_bench(records, target, quick=True)
        assert written == target
        payload = json.loads(target.read_text())
        assert payload["schema"] == SCHEMA_VERSION == 2
        assert payload["suite"] == "simulator-engines"
        assert payload["quick"] is True
        # Schema v2: the trajectory is self-describing.
        assert "git_commit" in payload
        assert payload["git_commit"] is None or len(payload["git_commit"]) == 40
        assert "timestamp" in payload and payload["timestamp"].startswith("20")
        assert len(payload["records"]) == len(records)
        first = payload["records"][0]
        for key in (
            "workload",
            "engine",
            "n",
            "repeats",
            "seconds",
            "events",
            "messages",
            "bits",
            "cycles",
            "events_per_sec",
            "messages_per_sec",
        ):
            assert key in first
        assert payload["totals"]["messages"] == sum(r.messages for r in records)

    def test_default_filename(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        records = run_bench(quick=True, repeats=1, sizes=(4,))
        written = write_bench(records)
        assert written.name == BENCH_FILENAME
        assert (tmp_path / BENCH_FILENAME).exists()


class TestAnalysisSuite:
    def test_workload_names_are_the_contract(self):
        points = [(w.name, w.impl) for w in default_analysis_workloads()]
        assert points == [
            ("symmetry_profile", "engine"),
            ("symmetry_profile", "naive"),
            ("symmetry_profile_structured", "engine"),
            ("symmetry_profile_structured", "naive"),
            ("fooling_verification", "engine"),
            ("fooling_verification", "naive"),
            ("witness_pairs", "engine"),
            ("witness_pairs", "naive"),
        ]

    def test_quick_sweeps_are_subsets(self):
        for workload in default_analysis_workloads():
            assert set(workload.quick_sizes) <= set(workload.sizes)

    def test_engine_and_naive_agree(self):
        """Engine/naive twins must produce identical checksums."""
        by_name = {}
        for workload in default_analysis_workloads():
            by_name.setdefault(workload.name, {})[workload.impl] = workload
        for name, impls in by_name.items():
            n = min(impls["naive"].quick_sizes)
            engine = measure_analysis(impls["engine"], n, repeats=1)
            naive = measure_analysis(impls["naive"], n, repeats=1)
            assert engine.checksum == naive.checksum, name
            assert engine.max_k == naive.max_k, name

    def test_speedups_cover_shared_points(self):
        records = run_analysis_bench(quick=True, repeats=1)
        speedups = analysis_speedups(records)
        # Every naive point has an engine twin at the same size in quick mode.
        naive_points = {
            (r.workload, r.n) for r in records if r.impl == "naive"
        }
        engine_points = {
            (r.workload, r.n) for r in records if r.impl == "engine"
        }
        for name, n in naive_points & engine_points:
            assert f"{name}/n={n}" in speedups

    def test_render_table_mentions_every_workload(self):
        records = run_analysis_bench(quick=True, repeats=1)
        table = render_analysis_table(records)
        for workload in default_analysis_workloads():
            assert workload.name in table

    def test_write_analysis_schema(self, tmp_path):
        records = run_analysis_bench(quick=True, repeats=1)
        target = tmp_path / "analysis.json"
        written = write_analysis_bench(records, target, quick=True)
        payload = json.loads(written.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["suite"] == "symmetry-analysis"
        assert "git_commit" in payload and "timestamp" in payload
        assert "speedups" in payload
        first = payload["records"][0]
        for key in (
            "workload",
            "impl",
            "n",
            "max_k",
            "repeats",
            "seconds",
            "checksum",
            "cells_per_sec",
        ):
            assert key in first


class TestCli:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        code = main(
            ["bench", "--quick", "--sizes", "5", "--repeats", "1", "--output", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["quick"] is True
        assert {r["n"] for r in payload["records"]} == {5}
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "async_input_distribution" in out

    def test_bench_analysis_suite(self, tmp_path, capsys):
        target = tmp_path / "analysis.json"
        code = main(
            ["bench", "--suite", "analysis", "--quick", "--repeats", "1",
             "--output", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["suite"] == "symmetry-analysis"
        assert {r["impl"] for r in payload["records"]} == {"engine", "naive"}
        out = capsys.readouterr().out
        assert "symmetry_profile" in out

    def test_bench_all_rejects_output(self, capsys):
        code = main(["bench", "--suite", "all", "--quick", "--output", "x.json"])
        assert code == 2

    def test_bench_analysis_rejects_sizes(self, capsys):
        code = main(["bench", "--suite", "analysis", "--quick", "--sizes", "7"])
        assert code == 2
