"""The benchmark-regression harness: records, JSON artifact, CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.perf import (
    BENCH_FILENAME,
    SCHEMA_VERSION,
    default_workloads,
    render_table,
    run_bench,
    write_bench,
)


class TestSuiteDefinition:
    def test_workload_names_are_the_contract(self):
        names = [workload.name for workload in default_workloads()]
        assert names == [
            "sync_and",
            "sync_input_distribution",
            "async_input_distribution",
            "async_synchronized",
        ]

    def test_quick_sweeps_are_subsets(self):
        for workload in default_workloads():
            assert set(workload.quick_sizes) <= set(workload.sizes)


class TestRunBench:
    def test_records_have_consistent_throughput(self):
        records = run_bench(quick=True, repeats=1, sizes=(5,))
        assert len(records) == len(default_workloads())
        for record in records:
            assert record.n == 5
            assert record.messages > 0
            assert record.events > 0
            assert record.seconds >= 0
            assert record.events_per_sec > 0
            assert record.messages_per_sec > 0

    def test_async_distribution_counts_n_n_minus_1(self):
        """The flagship workload must measure the exact §4.1 count."""
        (record,) = run_bench(
            quick=True,
            repeats=1,
            sizes=(9,),
            workloads=[
                w for w in default_workloads() if w.name == "async_input_distribution"
            ],
        )
        assert record.messages == 9 * 8
        assert record.events == record.messages

    def test_render_table_mentions_every_workload(self):
        records = run_bench(quick=True, repeats=1, sizes=(4,))
        table = render_table(records)
        for workload in default_workloads():
            assert workload.name in table


class TestArtifact:
    def test_write_bench_schema(self, tmp_path):
        records = run_bench(quick=True, repeats=1, sizes=(4,))
        target = tmp_path / "bench.json"
        written = write_bench(records, target, quick=True)
        assert written == target
        payload = json.loads(target.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["suite"] == "simulator-engines"
        assert payload["quick"] is True
        assert len(payload["records"]) == len(records)
        first = payload["records"][0]
        for key in (
            "workload",
            "engine",
            "n",
            "repeats",
            "seconds",
            "events",
            "messages",
            "bits",
            "cycles",
            "events_per_sec",
            "messages_per_sec",
        ):
            assert key in first
        assert payload["totals"]["messages"] == sum(r.messages for r in records)

    def test_default_filename(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        records = run_bench(quick=True, repeats=1, sizes=(4,))
        written = write_bench(records)
        assert written.name == BENCH_FILENAME
        assert (tmp_path / BENCH_FILENAME).exists()


class TestCli:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        code = main(
            ["bench", "--quick", "--sizes", "5", "--repeats", "1", "--output", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["quick"] is True
        assert {r["n"] for r in payload["records"]} == {5}
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "async_input_distribution" in out
