"""Cross-validation: independent implementations must agree.

When two algorithms solve the same problem, their outputs (not their
costs) must coincide on every input — a strong oracle that needs no
hand-computed expectations.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algorithms import (
    distribute_inputs_async,
    distribute_inputs_general,
    distribute_inputs_sync,
    distribute_inputs_sync_uni,
    elect_leader,
    orient_ring,
    orient_ring_async,
    synchronize_start,
    synchronize_start_bits,
)
from repro.algorithms.start_sync import run_with_random_schedule
from repro.core import RingConfiguration
from repro.sync import WakeupSchedule


class TestDistributionAgreement:
    @pytest.mark.parametrize("n", [4, 7, 12])
    def test_three_distributors_agree(self, n):
        for seed in range(4):
            config = RingConfiguration.random(n, random.Random(seed), oriented=True)
            a = distribute_inputs_sync(config).outputs
            b = distribute_inputs_sync_uni(config).outputs
            c = distribute_inputs_async(config).outputs
            assert a == b == c

    @pytest.mark.parametrize("n", [5, 9])
    def test_universal_matches_async_views(self, n):
        """The universal pipeline reads the same inputs the async algorithm
        sees — in the same or the mirrored order, depending on whether its
        orientation stage flipped that processor."""
        for seed in range(4):
            config = RingConfiguration.random(n, random.Random(seed))
            async_views = distribute_inputs_async(config).outputs
            general = distribute_inputs_general(config).outputs
            for i in range(n):
                switch, view = general[i]
                reference = (
                    async_views[i].inputs_leftward()
                    if switch
                    else async_views[i].inputs_rightward()
                )
                assert view.inputs_rightward() == reference


class TestOrientationAgreement:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_sync_and_async_orientation_agree_up_to_global_flip(self, n):
        """Both must orient; the chosen direction may differ (two correct
        solutions exist, §2)."""
        for seed in range(4):
            config = RingConfiguration.random(n, random.Random(seed * 3 + n))
            sync_fixed, _ = orient_ring(config)
            async_fixed, _ = orient_ring_async(config)
            assert sync_fixed.is_oriented and async_fixed.is_oriented


class TestStartSyncAgreement:
    @pytest.mark.parametrize("n", [8, 16, 27])
    def test_both_synchronizers_synchronize(self, n):
        config = RingConfiguration.oriented((0,) * n)
        for seed in range(3):
            schedule, fig5 = run_with_random_schedule(config, seed)
            bits = synchronize_start_bits(config, schedule)
            assert len(set(fig5.halt_times)) == 1
            assert len(set(bits.halt_times)) == 1

    def test_simultaneous_is_cheapest_for_both(self):
        n = 32
        config = RingConfiguration.oriented((0,) * n)
        base5 = synchronize_start(config, WakeupSchedule.simultaneous(n))
        base_bits = synchronize_start_bits(config, WakeupSchedule.simultaneous(n))
        for seed in range(3):
            schedule, fig5 = run_with_random_schedule(config, seed + 100)
            bits = synchronize_start_bits(config, schedule)
            assert fig5.stats.messages >= base5.stats.messages
            assert bits.stats.messages >= base_bits.stats.messages


class TestElectionAgreement:
    @pytest.mark.parametrize("n", [4, 8, 13])
    def test_all_four_algorithms_elect_the_same_leader(self, n):
        for seed in range(3):
            labels = list(range(10, 10 + n))
            random.Random(seed).shuffle(labels)
            config = RingConfiguration.oriented(labels)
            winners = {
                elect_leader(config, algo).unanimous_output()
                for algo in (
                    "chang-roberts",
                    "franklin",
                    "hirschberg-sinclair",
                    "peterson",
                )
            }
            assert winners == {max(labels)}


class TestExhaustiveTinyAgreement:
    def test_all_binary_rings_n5(self):
        """Every distributor on every binary input of a 5-ring."""
        for bits in itertools.product((0, 1), repeat=5):
            config = RingConfiguration.oriented(bits)
            a = distribute_inputs_sync(config).outputs
            b = distribute_inputs_sync_uni(config).outputs
            c = distribute_inputs_async(config).outputs
            assert a == b == c, bits
