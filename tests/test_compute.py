"""The compute_sync / compute_async drivers: one call, right algorithm."""

from __future__ import annotations

import random

import pytest

from repro.algorithms import (
    AND,
    MAJORITY,
    MAX,
    MIN,
    OR,
    STANDARD_FUNCTIONS,
    SUM,
    XOR,
    compute_async,
    compute_sync,
    pattern_count,
)
from repro.core import RingConfiguration


class TestAgreement:
    @pytest.mark.parametrize("f", STANDARD_FUNCTIONS, ids=lambda f: f.name)
    @pytest.mark.parametrize("n", [4, 7])
    def test_sync_async_agree_oriented(self, f, n):
        config = RingConfiguration.random(n, random.Random(n * 31), oriented=True)
        want = f.on_inputs(config.inputs)
        assert compute_sync(config, f).unanimous_output() == want
        assert compute_async(config, f).unanimous_output() == want

    @pytest.mark.parametrize("f", [AND, OR, XOR, SUM, MIN, MAX, MAJORITY])
    def test_odd_nonoriented(self, f):
        config = RingConfiguration.random(9, random.Random(7))
        want = f.on_inputs(config.inputs)
        assert compute_sync(config, f).unanimous_output() == want
        assert compute_async(config, f).unanimous_output() == want

    def test_even_nonoriented_sync_works(self):
        config = RingConfiguration((0, 1, 1, 0), (1, 0, 1, 1))
        assert compute_sync(config, XOR).unanimous_output() == 0

    def test_even_nonoriented_async_works(self):
        config = RingConfiguration((0, 1, 1, 0), (1, 0, 1, 1))
        assert compute_async(config, XOR).unanimous_output() == 0

    def test_n2_nonoriented_routes_async(self):
        config = RingConfiguration((1, 0), (1, 0))
        assert compute_sync(config, XOR).unanimous_output() == 1

    def test_counterclockwise(self):
        config = RingConfiguration.counterclockwise([1, 1, 0, 1])
        assert compute_sync(config, SUM).unanimous_output() == 3

    def test_chiral_function_on_oriented_ring(self):
        """COUNT[0011] is computable on oriented rings: all agree."""
        f = pattern_count("0011")
        config = RingConfiguration.oriented([0, 0, 1, 1, 0, 1])
        result = compute_sync(config, f)
        assert result.unanimous_output() == f.on_inputs(config.inputs)


class TestMessageEconomy:
    def test_sync_beats_async_at_scale(self):
        n = 64
        config = RingConfiguration.random(n, random.Random(2), oriented=True)
        sync_msgs = compute_sync(config, XOR).stats.messages
        async_msgs = compute_async(config, XOR).stats.messages
        assert async_msgs == n * (n - 1)
        assert sync_msgs < async_msgs / 2

    def test_crossover_for_small_n(self):
        """At tiny n the O(n²) algorithm can be the cheaper one."""
        n = 4
        config = RingConfiguration.oriented([1, 0, 1, 0])
        sync_msgs = compute_sync(config, XOR).stats.messages
        async_msgs = compute_async(config, XOR).stats.messages
        assert async_msgs <= sync_msgs
