"""RingView: the universal output of input distribution."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigurationError, RingConfiguration, RingView


def ring_from_seed(n: int, iseed: int, dseed: int) -> RingConfiguration:
    return RingConfiguration(
        tuple((iseed >> i) & 1 for i in range(n)),
        tuple((dseed >> i) & 1 for i in range(n)),
    )


class TestConstruction:
    def test_minimal(self):
        view = RingView(((1, 7),))
        assert view.n == 1 and view.own_input == 7

    def test_viewer_must_be_self_oriented(self):
        with pytest.raises(ConfigurationError):
            RingView(((0, 7),))

    def test_rel_bits_validated(self):
        with pytest.raises(ConfigurationError):
            RingView(((1, 7), (2, 8)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RingView(())


class TestFromConfiguration:
    def test_clockwise(self):
        ring = RingConfiguration.oriented([10, 20, 30])
        view = RingView.from_configuration(ring, 0)
        assert view.inputs_rightward() == (10, 20, 30)
        assert all(rel == 1 for rel, _ in view.entries)

    def test_flipped_viewer_reads_backwards(self):
        ring = RingConfiguration([10, 20, 30], (1, 0, 1))
        view = RingView.from_configuration(ring, 1)
        # Processor 1's right is processor 0 (D=0), so rightward reading is
        # 20, 10, 30; neighbors are oriented opposite to it.
        assert view.inputs_rightward() == (20, 10, 30)
        assert view.entries[1][0] == 0 and view.entries[2][0] == 0

    def test_leftward(self):
        ring = RingConfiguration.oriented([1, 2, 3, 4])
        view = RingView.from_configuration(ring, 0)
        assert view.inputs_leftward() == (1, 4, 3, 2)

    def test_accessors(self):
        ring = RingConfiguration.oriented([5, 6, 7])
        view = RingView.from_configuration(ring, 1)
        assert view.input_at(1) == 7
        assert view.input_at(4) == 7  # modular
        assert view.relative_orientation_at(2) == 1


class TestConsistency:
    @given(st.integers(2, 8), st.integers(0, 255), st.integers(0, 255))
    def test_all_views_of_one_ring_consistent(self, n, iseed, dseed):
        ring = ring_from_seed(n, iseed, dseed)
        views = [RingView.from_configuration(ring, i) for i in range(n)]
        base = views[0]
        for view in views[1:]:
            assert base.consistent_with(view)

    def test_different_rings_inconsistent(self):
        v1 = RingView.from_configuration(RingConfiguration.oriented([1, 1, 0]), 0)
        v2 = RingView.from_configuration(RingConfiguration.oriented([1, 1, 1]), 0)
        assert not v1.consistent_with(v2)

    def test_different_sizes_inconsistent(self):
        v1 = RingView.from_configuration(RingConfiguration.oriented([1, 1]), 0)
        v2 = RingView.from_configuration(RingConfiguration.oriented([1, 1, 1]), 0)
        assert not v1.consistent_with(v2)

    @given(st.integers(2, 8), st.integers(0, 255), st.integers(0, 255), st.integers(0, 7))
    def test_rotated_to_same_oriented_processor(self, n, iseed, dseed, d):
        """For same-oriented processors, views are exact rotations."""
        ring = ring_from_seed(n, iseed, dseed)
        i = 0
        view = RingView.from_configuration(ring, i)
        d %= n
        if view.relative_orientation_at(d) == 1:
            step = 1 if ring.orientations[i] == 1 else -1
            j = (i + step * d) % n
            assert view.rotated_to(d) == RingView.from_configuration(ring, j)


class TestAsConfiguration:
    @given(st.integers(2, 8), st.integers(0, 255), st.integers(0, 255))
    def test_roundtrip_preserves_function_inputs(self, n, iseed, dseed):
        """The view's configuration is the ring up to renaming/reflection."""
        ring = ring_from_seed(n, iseed, dseed)
        view = RingView.from_configuration(ring, 0)
        rebuilt = view.as_configuration()
        assert sorted(rebuilt.inputs) == sorted(ring.inputs)
        assert rebuilt.orientations[0] == 1

    def test_clockwise_identity(self):
        ring = RingConfiguration.oriented([4, 5, 6])
        view = RingView.from_configuration(ring, 0)
        assert view.as_configuration() == ring
