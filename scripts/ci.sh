#!/usr/bin/env bash
# CI entry point: tier-1 tests plus quick-mode smoke runs of both bench
# suites and the symmetry-analysis pytest-benchmarks, so the perf
# harness itself is exercised on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== lint (ruff) =="
# Config lives in pyproject.toml ([tool.ruff]); tolerated as a no-op
# where the ruff binary isn't installed.
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks
else
    echo "ruff not installed; skipping lint"
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench smoke (quick, --jobs 2) =="
python -m repro bench --quick --jobs 2 --output BENCH_smoke.json
rm -f BENCH_smoke.json

echo "== analysis bench smoke (quick, --jobs 2) =="
python -m repro bench --suite analysis --quick --jobs 2 --output BENCH_analysis_smoke.json
rm -f BENCH_analysis_smoke.json

echo "== obs bench smoke (recorder-off overhead, quick) =="
python -m repro bench --suite obs --quick --sizes 8 --output BENCH_obs_smoke.json
rm -f BENCH_obs_smoke.json

echo "== batch bench smoke (vectorized engine vs generator, quick, incl. n=10^5) =="
# The quick grid includes the sparse-AND workload at n=100000 — the
# large-n path (int32 lanes, padded delivery tables, bit accounting at
# 10^5 processors) is exercised on every CI run.  The time cap guards
# against the large-n row regressing into generator-like territory.
timeout 300 python -m repro bench --suite batch --quick --output BENCH_batch_smoke.json
python - <<'EOF'
import json

with open("BENCH_batch_smoke.json") as handle:
    payload = json.load(handle)
rows = payload["records"]
assert any(r["n"] >= 100_000 for r in rows), "quick grid lost its large-n row"
EOF
rm -f BENCH_batch_smoke.json

echo "== batched-sweep parity (--jobs 2, sync-batch vs sync, byte-identical) =="
python - <<'EOF'
import pickle
from repro.core import RingConfiguration
from repro.runtime import Runner, RunSpec

specs = [
    RunSpec.make(engine="sync-batch",
                 ring=RingConfiguration.oriented((1,) * n + (0,)),
                 algorithm="sync-and")
    for n in range(3, 11)
] + [
    RunSpec.make(engine="sync-batch",
                 ring=RingConfiguration.oriented((0,) * n),
                 algorithm="start-sync", wakeup=tuple(range(n)))
    for n in range(3, 9)
]
batched = Runner(jobs=2).run_specs(specs)
generator = Runner(jobs=2).run_specs(
    [spec.with_(engine="sync") for spec in specs]
)
assert [pickle.dumps(a) for a in batched] == [pickle.dumps(b) for b in generator], \
    "sync-batch results diverge from the generator engine"
print(f"batched-sweep parity: {len(specs)} specs byte-identical")
EOF

echo "== sync fuzz corpus parity (batched vs generator, byte-identical) =="
# The fault-free synchronous corpus rides the batched sweep path by
# default; forcing the generator engine must produce the same report
# bytes, or the engines have diverged.
python - <<'EOF'
import json
from repro.faults import run_sync_corpus

auto = run_sync_corpus(seed=20240501, engine="auto")
forced = run_sync_corpus(seed=20240501, engine="sync")
assert json.dumps(auto, sort_keys=True) == json.dumps(forced, sort_keys=True), \
    "batched sync corpus diverges from the generator engine"
assert auto["violations"] == 0, f"sync corpus violations: {auto['violations']}"
print(f"sync corpus parity: {auto['cases']} cases byte-identical, 0 violations")
EOF

echo "== topology-adversary fuzz smoke (fixed seeds, dynamic + oblivious) =="
# The fault-free corpus must carry the topology-layer counting targets,
# and they must survive seeded adversarial rewiring sweeps: every
# processor outputs the true ring size on every case, or the run fails.
python - <<'EOF'
from repro.faults import run_sync_corpus
from repro.faults.registry import default_sync_targets, sync_target_by_name

names = {t.name for t in default_sync_targets()}
assert {"dynamic-counting", "oblivious-counting"} <= names, names
assert sync_target_by_name("dynamic-counting").topologies
assert sync_target_by_name("oblivious-counting").oblivious

targets = (
    sync_target_by_name("dynamic-counting"),
    sync_target_by_name("oblivious-counting"),
)
cases = 0
for seed in (20240501, 20240502):
    report = run_sync_corpus(seed=seed, targets=targets)
    assert report["violations"] == 0, report["campaigns"]
    cases += report["cases"]
print(f"topology fuzz smoke: {cases} adversarial cases, 0 violations")
EOF

echo "== dynamic bench smoke (counting bounds, quick) =="
python -m repro bench --suite dynamic --quick --output BENCH_dynamic_smoke.json
python - <<'EOF'
import json

with open("BENCH_dynamic_smoke.json") as handle:
    payload = json.load(handle)
assert payload["schema"] == 2 and payload["suite"] == "dynamic-counting"
assert payload["bounds"]["ok"], payload["bounds"]["violations"]
EOF
rm -f BENCH_dynamic_smoke.json

echo "== symmetry analysis benchmarks =="
python -m pytest benchmarks/test_bench_symmetry.py -q

echo "== obs overhead guard =="
python -m pytest benchmarks/test_bench_obs.py -q

echo "== trace smoke (event stream reconciles with TraceStats) =="
python -m repro trace sync-and --n 6 --out TRACE_smoke.json --no-diagram
python -m repro trace input-distribution --n 5 --out TRACE_smoke.json \
    --metrics TRACE_smoke_metrics.json --no-diagram
rm -f TRACE_smoke.json TRACE_smoke.events.jsonl TRACE_smoke_metrics.json

echo "== serve gateway smoke (HTTP round-trip vs local runner, sqlite cache) =="
# Start the gateway as a real subprocess (parsing its readiness line),
# submit a mixed warm/cold batch over HTTP — both through the client
# library and the `submit` CLI — and assert the streamed results are
# pickle-identical to a direct Runner.run_specs on the same specs, with
# the pre-warmed spec answered from the cache without executing.
python - <<'EOF'
import json
import os
import pickle
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core import RingConfiguration
from repro.runtime import Runner, RunSpec, SqliteResultCache
from repro.serve import fetch_stats, submit_specs

tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
cache_dir = tmp / "cache"
specs = [
    RunSpec.make(engine="sync",
                 ring=RingConfiguration.oriented((1, 1, 0, 1)),
                 algorithm="sync-and"),
    RunSpec.make(engine="sync-batch",
                 ring=RingConfiguration.oriented((0, 1, 0, 1, 1)),
                 algorithm="sync-and"),
    RunSpec.make(engine="async",
                 ring=RingConfiguration.oriented((1, 1, 1)),
                 algorithm="and", scheduler="random", scheduler_seed=11),
]
# Pre-warm the first spec into the shared sqlite cache.
Runner(cache=SqliteResultCache(cache_dir)).run_specs([specs[0]])

proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--port", "0",
     "--cache", str(cache_dir), "--backend", "sqlite"],
    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
)
try:
    ready = proc.stdout.readline().strip()
    assert ready.startswith("serving on http://"), f"bad readiness line: {ready!r}"
    url = ready.split()[-1]

    outcomes = submit_specs(url, specs)
    local = Runner().run_specs(specs)
    statuses = [outcome.status for outcome in outcomes]
    assert statuses[0] == "cached", f"pre-warmed spec executed: {statuses}"
    assert statuses[1:] == ["done", "done"], statuses
    for outcome, expected in zip(outcomes, local):
        assert pickle.dumps(outcome.result) == pickle.dumps(expected), \
            "gateway result diverges from local Runner.run_specs"

    stats = fetch_stats(url)
    assert stats["warm_hits"] == 1 and stats["completed"] == 2, stats
    assert stats["cache"]["backend"] == "sqlite", stats["cache"]

    # The submit CLI sees the now fully-warm batch.
    specs_file = tmp / "specs.json"
    specs_file.write_text(json.dumps({"specs": [s.to_json_dict() for s in specs]}))
    cli = subprocess.run(
        [sys.executable, "-m", "repro", "submit", str(specs_file), "--url", url],
        capture_output=True, text=True, timeout=120,
    )
    assert cli.returncode == 0, cli.stderr
    assert cli.stdout.count("[cached]") == 3, cli.stdout
finally:
    proc.send_signal(signal.SIGINT)
    rc = proc.wait(timeout=60)
assert rc == 0, f"gateway exited {rc} on SIGINT"

# The shared root answers the cache CLI through the sqlite backend.
for argv, needle in (
    (["cache", "stats", "--cache", str(cache_dir)], "[sqlite]"),
    (["cache", "prune", "--cache", str(cache_dir)], "pruned"),
):
    out = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=60,
    )
    assert out.returncode == 0 and needle in out.stdout, out.stdout + out.stderr

print("serve smoke: 3 specs pickle-identical over HTTP, warm answers + "
      "CLI submit + sqlite cache CLI ok, clean shutdown")
EOF

echo "== schedule-fuzz smoke (fixed seed, --jobs 2) =="
# Small fixed-seed sweep so schedule-dependent regressions in the engine
# or the algorithms fail fast; exits nonzero on any invariant violation.
# --jobs 2 exercises the multiprocessing path (reports are identical for
# every job count).
python -m repro fuzz --quick --seed 20240501 --jobs 2 --output FUZZ_smoke.json \
    --metrics METRICS_smoke.json
rm -f FUZZ_smoke.json METRICS_smoke.json

echo "ci.sh: all green"

# Docs refresh (not run in CI): after a change that moves any measured
# number, regenerate the committed experiment tables in place with
#   python -m repro report --output EXPERIMENTS.md --jobs "$(nproc)"
# and commit the diff.  The file's footer carries no timestamps, so an
# unchanged report regenerates byte-identically.
