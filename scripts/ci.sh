#!/usr/bin/env bash
# CI entry point: tier-1 tests plus a quick-mode benchmark smoke run, so
# the perf harness itself is exercised on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench smoke (quick) =="
python -m repro bench --quick --output BENCH_smoke.json
rm -f BENCH_smoke.json

echo "ci.sh: all green"
