#!/usr/bin/env bash
# CI entry point: tier-1 tests plus quick-mode smoke runs of both bench
# suites and the symmetry-analysis pytest-benchmarks, so the perf
# harness itself is exercised on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench smoke (quick) =="
python -m repro bench --quick --output BENCH_smoke.json
rm -f BENCH_smoke.json

echo "== analysis bench smoke (quick) =="
python -m repro bench --suite analysis --quick --output BENCH_analysis_smoke.json
rm -f BENCH_analysis_smoke.json

echo "== symmetry analysis benchmarks =="
python -m pytest benchmarks/test_bench_symmetry.py -q

echo "== schedule-fuzz smoke (fixed seed) =="
# Small fixed-seed sweep so schedule-dependent regressions in the engine
# or the algorithms fail fast; exits nonzero on any invariant violation.
python -m repro fuzz --quick --seed 20240501 --output FUZZ_smoke.json
rm -f FUZZ_smoke.json

echo "ci.sh: all green"
