#!/usr/bin/env bash
# CI entry point: tier-1 tests plus quick-mode smoke runs of both bench
# suites and the symmetry-analysis pytest-benchmarks, so the perf
# harness itself is exercised on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== lint (ruff) =="
# Config lives in pyproject.toml ([tool.ruff]); tolerated as a no-op
# where the ruff binary isn't installed.
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks
else
    echo "ruff not installed; skipping lint"
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench smoke (quick, --jobs 2) =="
python -m repro bench --quick --jobs 2 --output BENCH_smoke.json
rm -f BENCH_smoke.json

echo "== analysis bench smoke (quick, --jobs 2) =="
python -m repro bench --suite analysis --quick --jobs 2 --output BENCH_analysis_smoke.json
rm -f BENCH_analysis_smoke.json

echo "== obs bench smoke (recorder-off overhead, quick) =="
python -m repro bench --suite obs --quick --sizes 8 --output BENCH_obs_smoke.json
rm -f BENCH_obs_smoke.json

echo "== batch bench smoke (vectorized engine vs generator, quick, incl. n=10^5) =="
# The quick grid includes the sparse-AND workload at n=100000 — the
# large-n path (int32 lanes, padded delivery tables, bit accounting at
# 10^5 processors) is exercised on every CI run.  The time cap guards
# against the large-n row regressing into generator-like territory.
timeout 300 python -m repro bench --suite batch --quick --output BENCH_batch_smoke.json
python - <<'EOF'
import json

with open("BENCH_batch_smoke.json") as handle:
    payload = json.load(handle)
rows = payload["records"]
assert any(r["n"] >= 100_000 for r in rows), "quick grid lost its large-n row"
EOF
rm -f BENCH_batch_smoke.json

echo "== batched-sweep parity (--jobs 2, sync-batch vs sync, byte-identical) =="
python - <<'EOF'
import pickle
from repro.core import RingConfiguration
from repro.runtime import Runner, RunSpec

specs = [
    RunSpec.make(engine="sync-batch",
                 ring=RingConfiguration.oriented((1,) * n + (0,)),
                 algorithm="sync-and")
    for n in range(3, 11)
] + [
    RunSpec.make(engine="sync-batch",
                 ring=RingConfiguration.oriented((0,) * n),
                 algorithm="start-sync", wakeup=tuple(range(n)))
    for n in range(3, 9)
]
batched = Runner(jobs=2).run_specs(specs)
generator = Runner(jobs=2).run_specs(
    [spec.with_(engine="sync") for spec in specs]
)
assert [pickle.dumps(a) for a in batched] == [pickle.dumps(b) for b in generator], \
    "sync-batch results diverge from the generator engine"
print(f"batched-sweep parity: {len(specs)} specs byte-identical")
EOF

echo "== sync fuzz corpus parity (batched vs generator, byte-identical) =="
# The fault-free synchronous corpus rides the batched sweep path by
# default; forcing the generator engine must produce the same report
# bytes, or the engines have diverged.
python - <<'EOF'
import json
from repro.faults import run_sync_corpus

auto = run_sync_corpus(seed=20240501, engine="auto")
forced = run_sync_corpus(seed=20240501, engine="sync")
assert json.dumps(auto, sort_keys=True) == json.dumps(forced, sort_keys=True), \
    "batched sync corpus diverges from the generator engine"
assert auto["violations"] == 0, f"sync corpus violations: {auto['violations']}"
print(f"sync corpus parity: {auto['cases']} cases byte-identical, 0 violations")
EOF

echo "== symmetry analysis benchmarks =="
python -m pytest benchmarks/test_bench_symmetry.py -q

echo "== obs overhead guard =="
python -m pytest benchmarks/test_bench_obs.py -q

echo "== trace smoke (event stream reconciles with TraceStats) =="
python -m repro trace sync-and --n 6 --out TRACE_smoke.json --no-diagram
python -m repro trace input-distribution --n 5 --out TRACE_smoke.json \
    --metrics TRACE_smoke_metrics.json --no-diagram
rm -f TRACE_smoke.json TRACE_smoke.events.jsonl TRACE_smoke_metrics.json

echo "== schedule-fuzz smoke (fixed seed, --jobs 2) =="
# Small fixed-seed sweep so schedule-dependent regressions in the engine
# or the algorithms fail fast; exits nonzero on any invariant violation.
# --jobs 2 exercises the multiprocessing path (reports are identical for
# every job count).
python -m repro fuzz --quick --seed 20240501 --jobs 2 --output FUZZ_smoke.json \
    --metrics METRICS_smoke.json
rm -f FUZZ_smoke.json METRICS_smoke.json

echo "ci.sh: all green"

# Docs refresh (not run in CI): after a change that moves any measured
# number, regenerate the committed experiment tables in place with
#   python -m repro report --output EXPERIMENTS.md --jobs "$(nproc)"
# and commit the diff.  The file's footer carries no timestamps, so an
# unchanged report regenerates byte-identically.
