"""E2 (§4.2): synchronous AND in O(n) messages.

Paper claim: AND costs at most ~2n messages synchronously — silence does
the work — versus the Ω(n²) asynchronous floor (E6).
"""

from __future__ import annotations

import random

from repro.algorithms import compute_and_sync
from repro.analysis import BoundCheck, growth_exponent
from repro.core import RingConfiguration

SWEEP = (8, 16, 32, 64, 128)


def test_e2_linear_messages(record_bound, benchmark):
    measured = []
    for n in SWEEP:
        worst = 0
        for seed in range(4):
            config = RingConfiguration.random(n, random.Random(seed), oriented=True)
            result = compute_and_sync(config)
            worst = max(worst, result.stats.messages)
        record_bound(BoundCheck("E2 AND messages", n, worst, 2 * n, "upper"))
        measured.append(max(worst, 1))
    exponent = growth_exponent(SWEEP, measured)
    assert exponent < 1.3  # linear, not n log n or n²
    config = RingConfiguration.random(64, random.Random(0), oriented=True)
    benchmark(lambda: compute_and_sync(config))


def test_e2_all_zeros_exact(record_bound, benchmark):
    n = 64
    config = RingConfiguration.oriented([0] * n)
    result = benchmark(lambda: compute_and_sync(config))
    record_bound(BoundCheck("E2 all-zeros", n, result.stats.messages, 2 * n, "upper"))
    record_bound(BoundCheck("E2 all-zeros", n, result.stats.messages, 2 * n, "lower"))


def test_e2_time_is_half_ring(record_bound, benchmark):
    n = 64
    config = RingConfiguration.oriented([1] * n)
    result = benchmark(lambda: compute_and_sync(config))
    record_bound(BoundCheck("E2 cycles", n, result.cycles, n // 2 + 2, "upper"))
