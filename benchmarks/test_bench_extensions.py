"""E16/E17/E18: the paper's remarks, implemented and measured.

E16 (§4.2.4) — bit-efficient start synchronization: every message is one
bit, the count is O(n log n), and the total bit cost beats Figure 5's.
E17 (§4.2.1 remark) — the unidirectional Figure 2: all traffic one-sided
at a constant-factor premium (log₂ vs log₁.₅ rounds).
E18 (§4.2.1–§4.2.2 remarks) — unary time encoding (k subcycles, nil
messages) and the alternating/universal distribution pipelines.
"""

from __future__ import annotations

import random

from repro.algorithms import (
    distribute_inputs_alternating,
    distribute_inputs_general,
    distribute_inputs_sync,
    distribute_inputs_sync_uni,
    quasi_orient,
    run_time_encoded,
    synchronize_start,
    synchronize_start_bits,
)
from repro.algorithms import alternating as _alternating
from repro.algorithms import combined as _combined
from repro.algorithms import start_sync_bits as _bits
from repro.algorithms import sync_input_distribution_uni as _uni
from repro.algorithms.orientation import QuasiOrientation
from repro.algorithms.start_sync import run_with_random_schedule
from repro.algorithms.time_encoding import ORIENTATION_ALPHABET
from repro.analysis import BoundCheck, best_shape
from repro.core import RingConfiguration
from repro.sync import WakeupSchedule


def _zeros(n: int) -> RingConfiguration:
    return RingConfiguration.oriented((0,) * n)


def test_e16_bit_start_sync(record_bound, benchmark):
    for n in (16, 32, 64):
        schedule, fig5 = run_with_random_schedule(_zeros(n), n * 5)
        frugal = synchronize_start_bits(_zeros(n), schedule)
        record_bound(
            BoundCheck("E16 msgs", n, frugal.stats.messages,
                       _bits.message_bound(n), "upper")
        )
        record_bound(
            BoundCheck("E16 one bit each", n, frugal.stats.bits,
                       float(frugal.stats.messages), "upper")
        )
        record_bound(
            BoundCheck("E16 bits < Fig5 bits", n, frugal.stats.bits,
                       float(fig5.stats.bits), "upper")
        )
        record_bound(
            BoundCheck("E16 time premium", n, frugal.cycles,
                       float(fig5.cycles), "lower")
        )
    benchmark(
        lambda: synchronize_start_bits(_zeros(32), WakeupSchedule.simultaneous(32))
    )


def test_e17_unidirectional(record_bound, benchmark):
    worst_counts, sizes = [], (16, 32, 64, 128)
    for n in sizes:
        worst = 0
        for seed in range(3):
            config = RingConfiguration.random(n, random.Random(seed), oriented=True)
            result = distribute_inputs_sync_uni(config)
            worst = max(worst, result.stats.messages)
        record_bound(
            BoundCheck("E17 uni msgs", n, worst, _uni.message_bound(n), "upper")
        )
        worst_counts.append(worst)
    assert best_shape(sizes, worst_counts) in ("nlogn", "linear")
    # premium over the bidirectional algorithm is a constant factor
    n = 64
    config = RingConfiguration.random(n, random.Random(1), oriented=True)
    uni = distribute_inputs_sync_uni(config).stats.messages
    bidi = distribute_inputs_sync(config).stats.messages
    record_bound(BoundCheck("E17 premium ≤ 3×", n, uni, 3.0 * bidi, "upper"))
    benchmark(lambda: distribute_inputs_sync_uni(config))


def test_e18_alternating_and_universal(record_bound, benchmark):
    for n in (16, 32, 64):
        rng = random.Random(n)
        alt_config = RingConfiguration.alternating(
            tuple(rng.randrange(2) for _ in range(n))
        )
        alt = distribute_inputs_alternating(alt_config)
        record_bound(
            BoundCheck("E18 alternating", n, alt.stats.messages,
                       _alternating.message_bound(n), "upper")
        )
        config = RingConfiguration.random(n, random.Random(n * 3))
        universal = distribute_inputs_general(config)
        record_bound(
            BoundCheck("E18 universal", n, universal.stats.messages,
                       _combined.message_bound(n), "upper")
        )
    benchmark(
        lambda: distribute_inputs_general(
            RingConfiguration.random(32, random.Random(9))
        )
    )


def test_e18_time_encoding(record_bound, benchmark):
    n = 27
    config = RingConfiguration.random(n, random.Random(2))
    plain = quasi_orient(config)
    encoded = run_time_encoded(config, QuasiOrientation, ORIENTATION_ALPHABET)
    assert encoded.outputs == plain.outputs
    record_bound(
        BoundCheck("E18 encoded msgs == plain", n, encoded.stats.messages,
                   float(plain.stats.messages), "upper")
    )
    record_bound(
        BoundCheck("E18 encoded 1 bit each", n, encoded.stats.bits,
                   float(encoded.stats.messages), "upper")
    )
    record_bound(
        BoundCheck("E18 cycle multiplier", n, encoded.cycles,
                   float(len(ORIENTATION_ALPHABET) * (plain.cycles + 1)), "upper")
    )
    benchmark(
        lambda: run_time_encoded(config, QuasiOrientation, ORIENTATION_ALPHABET)
    )
