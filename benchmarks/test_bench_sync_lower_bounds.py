"""E8/E9/E10 (§6.3): synchronous Θ(n log n) lower bounds at n = 3^k.

Paper claims: XOR ≥ (n/54)·ln(n/9) (E8); orientation ≥ (n/27)·ln(n/9)
(E9); start synchronization ≥ (n/54)·ln(n/36) on n = 4·3^k (E10).  Each
instance's fooling conditions are verified numerically; our matching
upper-bound algorithms are then run on the adversarial configurations to
confirm measured ≥ bound (and ≤ their own O(n log n) budgets): the
sandwich that pins the Θ.
"""

from __future__ import annotations

from repro.algorithms import (
    compute_sync,
    quasi_orient,
    synchronize_start,
)
from repro.algorithms.functions import XOR
from repro.analysis import BoundCheck
from repro.core import RingConfiguration
from repro.lowerbounds import (
    orientation_sync_pair,
    paper_bound_orientation_sync,
    paper_bound_start_sync,
    paper_bound_xor_sync,
    start_sync_instance,
    xor_sync_pair,
)


def test_e8_xor(record_bound, benchmark):
    for k in (3, 4, 5):
        n = 3**k
        pair = xor_sync_pair(k)
        assert pair.verify_neighborhoods()
        assert pair.verify_symmetry()
        bound = pair.message_lower_bound()
        record_bound(BoundCheck("E8 XOR Σβ/2 vs paper", n, bound,
                                paper_bound_xor_sync(n), "lower"))
        # Figure 2 computing XOR on the adversarial string pays ≥ the bound.
        cost = compute_sync(pair.ring_a, XOR).stats.messages
        record_bound(BoundCheck("E8 XOR measured", n, cost, bound, "lower"))
    pair = xor_sync_pair(4)
    benchmark(lambda: compute_sync(pair.ring_a, XOR))


def test_e9_orientation(record_bound, benchmark):
    for k in (3, 4, 5):
        n = 3**k
        pair = orientation_sync_pair(k)
        assert pair.verify_neighborhoods()
        assert pair.verify_symmetry()
        bound = pair.message_lower_bound()
        record_bound(BoundCheck("E9 orient Σβ/2 vs paper", n, bound,
                                paper_bound_orientation_sync(n), "lower"))
        cost = quasi_orient(pair.ring_a).stats.messages
        record_bound(BoundCheck("E9 orient measured", n, cost, bound, "lower"))
    pair = orientation_sync_pair(4)
    benchmark(lambda: quasi_orient(pair.ring_a))


def test_e10_start_sync(record_bound, benchmark):
    for k in (3, 4):
        instance = start_sync_instance(k)
        n = instance.n
        bound = instance.message_lower_bound()
        ring = RingConfiguration.oriented((0,) * n)
        cost = synchronize_start(ring, instance.schedule).stats.messages
        record_bound(BoundCheck("E10 start-sync measured", n, cost, bound, "lower"))
        # Note: the paper's closed form (n/54)ln(n/36) overstates the odd-
        # harmonic sum by ~2× at these sizes; we report both for the record.
        record_bound(
            BoundCheck("E10 measured vs paper form", n, cost,
                       paper_bound_start_sync(n), "lower")
        )
    instance = start_sync_instance(3)
    ring = RingConfiguration.oriented((0,) * instance.n)
    benchmark(lambda: synchronize_start(ring, instance.schedule))
