"""E11 (Theorems 5.4, 6.7): almost all computable functions are expensive.

Paper claims: a uniformly random computable Boolean function has
asynchronous complexity > n²/4 with probability ≥ 1 − 2^{1−2^{n/2}/n}
(Thm 5.4), and synchronous complexity ≥ (n/64)ln(n/64) with probability
≥ 1 − 2^{1−2^{√n}/n} (Thm 6.7, n = 2^{2k}).  The Monte Carlo estimates
must land under the closed-form bound.
"""

from __future__ import annotations

from repro.analysis import BoundCheck
from repro.lowerbounds import (
    estimate_theorem_54,
    estimate_theorem_67,
    theorem_54_probability_bound,
    theorem_67_probability_bound,
)


def test_e11_theorem_54(record_bound, benchmark):
    for n in (6, 8, 10, 12):
        estimate = estimate_theorem_54(n, trials=400, seed=n)
        record_bound(
            BoundCheck(
                "E11 P(cheap) Thm5.4",
                n,
                estimate.estimate,
                min(1.0, theorem_54_probability_bound(n)),
                "upper",
            )
        )
    benchmark(lambda: estimate_theorem_54(10, trials=100, seed=0))


def test_e11_theorem_67(record_bound, benchmark):
    estimate = estimate_theorem_67(16, trials=400, seed=5)
    record_bound(
        BoundCheck(
            "E11 P(cheap) Thm6.7",
            16,
            estimate.estimate,
            min(1.0, theorem_67_probability_bound(16)),
            "upper",
        )
    )
    benchmark(lambda: estimate_theorem_67(16, trials=100, seed=1))
