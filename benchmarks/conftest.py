"""Shared benchmark infrastructure: paper-bound bookkeeping.

Every benchmark registers :class:`repro.analysis.BoundCheck` rows via the
``record_bound`` fixture; the session summary prints them as the
paper-vs-measured table that EXPERIMENTS.md mirrors.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.analysis import BoundCheck

_ROWS: List[BoundCheck] = []


@pytest.fixture
def record_bound():
    """Register a BoundCheck for the end-of-session table (and assert it)."""

    def _record(check: BoundCheck) -> None:
        _ROWS.append(check)
        assert check.satisfied, (
            f"{check.experiment} n={check.n}: measured {check.measured} "
            f"violates {check.kind} bound {check.bound}"
        )

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    terminalreporter.write_sep("=", "paper bound vs measured")
    terminalreporter.write_line(
        "| experiment | n | measured | bound | kind | ratio | ok |"
    )
    terminalreporter.write_line("|---|---|---|---|---|---|---|")
    for check in _ROWS:
        terminalreporter.write_line(check.row())
