"""E14 (§8): the time/bits trade-off for synchronous input distribution.

Paper claims: any input-distribution algorithm with ``m`` bit-messages
and time ``t`` obeys ``t ≥ (m/n)·2^{c·n²/m}``.  The two implemented
algorithms sit at the bracket's ends — Figure 2 is message-frugal but
ships long labels; §4.1 run in lock step is bit-heavy but time-optimal —
and the measured points must respect the curve's *shape*: strictly fewer
messages, strictly more time.
"""

from __future__ import annotations

import random

from repro.algorithms import distribute_inputs_sync
from repro.algorithms.async_input_distribution import AsyncInputDistribution
from repro.analysis import BoundCheck, TradeoffPoint
from repro.asynch import run_async_synchronized
from repro.core import RingConfiguration


def _points(n: int, seed: int):
    config = RingConfiguration.random(n, random.Random(seed), oriented=True)
    fig2 = distribute_inputs_sync(config)
    lockstep = run_async_synchronized(
        config, lambda value, size: AsyncInputDistribution(value, size)
    )
    return (
        TradeoffPoint("fig2", n, fig2.stats.messages, fig2.stats.bits, fig2.cycles),
        TradeoffPoint(
            "lockstep-n^2", n, lockstep.stats.messages, lockstep.stats.bits,
            lockstep.cycles,
        ),
    )


def test_e14_bracket(record_bound, benchmark):
    rows = []
    for n in (32, 64, 128):
        fig2, lockstep = _points(n, n)
        rows.append((fig2, lockstep))
        # Message-frugal end: Fig.2 sends far fewer messages…
        record_bound(
            BoundCheck("E14 fig2 msgs < n² side", n, fig2.messages,
                       lockstep.messages / 2, "upper")
        )
        # …but takes far longer…
        record_bound(
            BoundCheck("E14 fig2 time > n² side", n, fig2.cycles,
                       4 * lockstep.cycles, "lower")
        )
        # …and the lockstep algorithm is time-optimal: ~n/2 cycles.
        record_bound(
            BoundCheck("E14 lockstep time ≈ n/2", n, lockstep.cycles,
                       n // 2 + 2, "upper")
        )
    for fig2, lockstep in rows:
        print(fig2.row())
        print(lockstep.row())
    benchmark(lambda: _points(32, 7))


def test_e14_fig2_bits_are_quadratic(record_bound, benchmark):
    """Fig.2's labels carry Θ(n) input bits each: its *bit* cost is ~n².

    This is why the paper needs the unary time-encoding (§4.2.1) to claim
    Θ(n log n) bits — at exponential time cost (the other end of the
    curve).
    """
    n = 64
    config = RingConfiguration.random(n, random.Random(3), oriented=True)
    result = benchmark(lambda: distribute_inputs_sync(config))
    record_bound(
        BoundCheck("E14 fig2 bits", n, result.stats.bits, 8 * n * n, "upper")
    )
    record_bound(
        BoundCheck("E14 fig2 bits", n, result.stats.bits, float(n * n) / 8, "lower")
    )
