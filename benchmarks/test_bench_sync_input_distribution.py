"""E3 (§4.2.1, Figure 2): synchronous input distribution in O(n log n).

Paper claim: ≤ n(3·log₁.₅ n + 1) messages and ≤ n(2·log₁.₅ n + 1) cycles
(our implementation adds the broadcast pass: +2 linear terms, see
``message_bound``).  The measured curve must fit n·log n, not n².
"""

from __future__ import annotations

import random

from repro.algorithms import distribute_inputs_sync
from repro.algorithms.sync_input_distribution import cycle_bound, message_bound
from repro.analysis import BoundCheck, best_shape
from repro.core import RingConfiguration

SWEEP = (8, 16, 32, 64, 128, 256)


def test_e3_message_bound_sweep(record_bound, benchmark):
    worst_counts = []
    for n in SWEEP:
        worst = 0
        for seed in range(3):
            config = RingConfiguration.random(n, random.Random(seed), oriented=True)
            result = distribute_inputs_sync(config)
            worst = max(worst, result.stats.messages)
        record_bound(BoundCheck("E3 Fig2 messages", n, worst, message_bound(n), "upper"))
        worst_counts.append(worst)
    assert best_shape(SWEEP, worst_counts) in ("nlogn", "linear")
    config = RingConfiguration.random(64, random.Random(1), oriented=True)
    benchmark(lambda: distribute_inputs_sync(config))


def test_e3_cycle_bound(record_bound, benchmark):
    n = 128
    config = RingConfiguration.random(n, random.Random(3), oriented=True)
    result = benchmark(lambda: distribute_inputs_sync(config))
    record_bound(BoundCheck("E3 Fig2 cycles", n, result.cycles, cycle_bound(n), "upper"))


def test_e3_symmetric_input_deadlocks_cheaply(record_bound, benchmark):
    """All-equal inputs: one round, deadlock detected, ~3n messages."""
    n = 128
    config = RingConfiguration.oriented([1] * n)
    result = benchmark(lambda: distribute_inputs_sync(config))
    record_bound(
        BoundCheck("E3 symmetric input", n, result.stats.messages, 3 * n, "upper")
    )
