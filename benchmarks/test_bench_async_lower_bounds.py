"""E6/E7 (§5.2): asynchronous Ω(n²) lower bounds, measured.

Paper claims: AND needs ≥ n·⌊n/2⌋ messages (E6, Theorem 5.1 on the
``1ⁿ``/``1ⁿ⁻¹0`` pair; refined to the tight n(n−1)); orientation needs
≥ n·⌊(n+2)/4⌋ (E7, Figure 6 pair).  We verify each pair's conditions
numerically, evaluate the Σβ bound, and confirm the §4.1 algorithm —
run under the actual Theorem 5.1 synchronizing adversary — pays at least
that much on the symmetric configuration.
"""

from __future__ import annotations

from repro.algorithms.async_input_distribution import AsyncInputDistribution
from repro.analysis import BoundCheck, growth_exponent
from repro.asynch import run_async_synchronized
from repro.core import RingConfiguration
from repro.lowerbounds import (
    and_fooling_pair,
    orientation_async_pair,
    paper_bound_and_async,
    paper_bound_orientation_async,
)

SWEEP = (9, 15, 21, 31)


def _measured_on(config: RingConfiguration) -> int:
    result = run_async_synchronized(
        config, lambda value, n: AsyncInputDistribution(value, n)
    )
    return result.stats.messages


def test_e6_and_lower_bound(record_bound, benchmark):
    bounds, measured = [], []
    for n in SWEEP:
        pair = and_fooling_pair(n)
        assert pair.verify_neighborhoods()
        assert pair.verify_symmetry()
        bound = pair.message_lower_bound()
        assert bound == paper_bound_and_async(n)
        cost = _measured_on(pair.ring_a)
        record_bound(BoundCheck("E6 AND async", n, cost, bound, "lower"))
        record_bound(BoundCheck("E6 AND tight", n, cost, n * (n - 1), "upper"))
        bounds.append(bound)
        measured.append(cost)
    assert growth_exponent(SWEEP, bounds) > 1.8  # the bound itself is quadratic
    benchmark(lambda: _measured_on(and_fooling_pair(15).ring_a))


def test_e7_orientation_lower_bound(record_bound, benchmark):
    for n in SWEEP:
        pair = orientation_async_pair(n)
        assert pair.verify_neighborhoods()
        assert pair.verify_symmetry()
        bound = pair.message_lower_bound()
        assert bound == paper_bound_orientation_async(n)
        # Orientation reduces to input distribution; the universal O(n²)
        # algorithm on the symmetric ring pays ≥ the orientation bound.
        cost = _measured_on(pair.ring_a)
        record_bound(BoundCheck("E7 orientation async", n, cost, bound, "lower"))
    benchmark(lambda: orientation_async_pair(21).message_lower_bound())
