"""E15 (Corollary 5.2 + intro): the distinct/duplicate extrema crossover.

Paper claims: with distinct inputs, extrema-finding is leader election —
O(n log n) [5, 8, 12]; with possibly-equal inputs it needs ≥ n(n−1)
messages, met exactly by §4.1.  The measured curves must cross: the
general path grows quadratically, the distinct path quasi-linearly, with
Chang–Roberts' worst case sitting in between.
"""

from __future__ import annotations

import math
import random

from repro.algorithms import (
    elect_leader,
    find_extremum_distinct,
    find_extremum_general,
    worst_case_labels,
)
from repro.analysis import BoundCheck, growth_exponent
from repro.core import RingConfiguration

SWEEP = (8, 16, 32, 64)


def test_e15_crossover(record_bound, benchmark):
    general, franklin = [], []
    for n in SWEEP:
        duplicates = RingConfiguration.oriented((1,) * n)
        cost_general = find_extremum_general(duplicates).stats.messages
        record_bound(
            BoundCheck("E15 duplicates = n(n-1)", n, cost_general,
                       float(n * (n - 1)), "lower")
        )
        record_bound(
            BoundCheck("E15 duplicates = n(n-1)", n, cost_general,
                       float(n * (n - 1)), "upper")
        )
        labels = RingConfiguration.oriented(worst_case_labels(n))
        cost_franklin = find_extremum_distinct(labels, "franklin").stats.messages
        record_bound(
            BoundCheck("E15 Franklin ≤ 4n(log n+2)", n, cost_franklin,
                       4 * n * (math.log2(n) + 2), "upper")
        )
        general.append(cost_general)
        franklin.append(cost_franklin)
    assert growth_exponent(SWEEP, general) > 1.8
    assert growth_exponent(SWEEP, franklin) < 1.5
    # who wins: by n = 64 the labeled path is at least 5× cheaper.
    assert general[-1] > 5 * franklin[-1]
    benchmark(lambda: find_extremum_general(RingConfiguration.oriented((1,) * 32)))


def test_e15_chang_roberts_worst_case(record_bound, benchmark):
    for n in SWEEP:
        config = RingConfiguration.oriented(worst_case_labels(n))
        cost = elect_leader(config, "chang-roberts").stats.messages
        record_bound(
            BoundCheck("E15 CR worst ≥ n(n+1)/2", n, cost,
                       n * (n + 1) / 2, "lower")
        )
    config = RingConfiguration.oriented(worst_case_labels(32))
    benchmark(lambda: elect_leader(config, "chang-roberts"))


def test_e15_average_case_chang_roberts(record_bound, benchmark):
    """Random labels: CR averages O(n log n) — the classical folklore."""
    n = 64
    total = 0
    trials = 10
    for seed in range(trials):
        labels = list(range(n))
        random.Random(seed).shuffle(labels)
        total += elect_leader(
            RingConfiguration.oriented(labels), "chang-roberts"
        ).stats.messages
    average = total / trials
    record_bound(
        BoundCheck("E15 CR average", n, average, 3 * n * math.log(n), "upper")
    )
    labels = list(range(n))
    random.Random(0).shuffle(labels)
    config = RingConfiguration.oriented(labels)
    benchmark(lambda: elect_leader(config, "chang-roberts"))
