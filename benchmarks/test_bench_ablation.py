"""Ablation: the four input-distribution implementations head to head.

DESIGN.md's design-decision table realized as measurements: the same
problem (every processor learns the whole ring) solved by

* the asynchronous flood (§4.1) run under the synchronizing schedule,
* Figure 2 (bidirectional label election),
* the unidirectional Peterson-style variant,
* the universal orient-then-distribute pipeline (on scrambled rings),

compared on messages, bits, and cycles.  The shape claims: the flood is
the only quadratic-message column but the fastest; the three elections
are all `Θ(n log n)` messages within constant factors of each other.
"""

from __future__ import annotations

import random

from repro.algorithms import (
    distribute_inputs_general,
    distribute_inputs_sync,
    distribute_inputs_sync_uni,
)
from repro.algorithms.async_input_distribution import AsyncInputDistribution
from repro.analysis import BoundCheck, growth_exponent
from repro.asynch import run_async_synchronized
from repro.core import RingConfiguration

SIZES = (16, 32, 64, 128)


def _rows(n: int):
    oriented = RingConfiguration.random(n, random.Random(n), oriented=True)
    scrambled = RingConfiguration.random(n, random.Random(n + 1), oriented=False)
    flood = run_async_synchronized(
        oriented, lambda value, size: AsyncInputDistribution(value, size)
    )
    fig2 = distribute_inputs_sync(oriented)
    uni = distribute_inputs_sync_uni(oriented)
    universal = distribute_inputs_general(scrambled)
    return flood, fig2, uni, universal


def test_ablation_message_shapes(record_bound, benchmark):
    flood_counts, election_counts = [], []
    for n in SIZES:
        flood, fig2, uni, universal = _rows(n)
        flood_counts.append(flood.stats.messages)
        election_counts.append(fig2.stats.messages)
        # elections beat the flood on messages from modest n on
        if n >= 32:
            record_bound(
                BoundCheck("ABL fig2 < flood", n, fig2.stats.messages,
                           float(flood.stats.messages), "upper")
            )
            record_bound(
                BoundCheck("ABL uni < flood", n, uni.stats.messages,
                           float(flood.stats.messages), "upper")
            )
        # the elections agree within constant factors
        record_bound(
            BoundCheck("ABL uni ≤ 3×fig2", n, uni.stats.messages,
                       3.0 * fig2.stats.messages, "upper")
        )
        record_bound(
            BoundCheck("ABL universal ≤ 6×fig2", n, universal.stats.messages,
                       6.0 * fig2.stats.messages, "upper")
        )
        # the flood is the time champion
        record_bound(
            BoundCheck("ABL flood time ≤ n/2+2", n, flood.cycles,
                       n / 2 + 2, "upper")
        )
    assert growth_exponent(SIZES, flood_counts) > 1.8
    assert growth_exponent(SIZES, election_counts) < 1.5
    benchmark(lambda: _rows(32))
