"""E5 (§4.2.3, Figure 5): start synchronization in O(n log n) messages.

Paper claim: ≤ 2n(1 + log₁.₅ n) messages; all processors halt at the same
global cycle with identical counters.
"""

from __future__ import annotations

from repro.algorithms import synchronize_start
from repro.algorithms.start_sync import message_bound, run_with_random_schedule
from repro.analysis import BoundCheck, best_shape
from repro.core import RingConfiguration
from repro.homomorphisms import start_sync_construction
from repro.sync import WakeupSchedule

SWEEP = (8, 16, 32, 64, 128)


def ring(n: int) -> RingConfiguration:
    return RingConfiguration.oriented((0,) * n)


def test_e5_message_bound_sweep(record_bound, benchmark):
    worst_counts = []
    for n in SWEEP:
        worst = 0
        for seed in range(3):
            _schedule, result = run_with_random_schedule(ring(n), seed)
            worst = max(worst, result.stats.messages)
        record_bound(BoundCheck("E5 start-sync messages", n, worst, message_bound(n), "upper"))
        worst_counts.append(worst)
    assert best_shape(SWEEP, worst_counts) in ("nlogn", "linear")
    benchmark(lambda: synchronize_start(ring(32), WakeupSchedule.simultaneous(32)))


def test_e5_adversarial_schedule(record_bound, benchmark):
    """Under the §7.2.2 two-stage adversary schedule (worst known input)."""
    construction = start_sync_construction(108)
    n = construction.n

    def run():
        return synchronize_start(ring(n), construction.schedule)

    result = benchmark(run)
    record_bound(
        BoundCheck("E5 adversary schedule", n, result.stats.messages, message_bound(n), "upper")
    )


def test_e5_simultaneous_is_cheap(record_bound, benchmark):
    """Simultaneous start: everyone ties in round one — 2n messages."""
    n = 128
    result = benchmark(
        lambda: synchronize_start(ring(n), WakeupSchedule.simultaneous(n))
    )
    record_bound(BoundCheck("E5 simultaneous", n, result.stats.messages, 2 * n, "upper"))
