"""E1 (§4.1): asynchronous input distribution costs exactly n(n−1) messages.

Paper claim: every problem solvable on an anonymous ring is solvable with
``n(n−1)`` messages (odd n, or even oriented n with the refinement; ``n²``
for even nonoriented rings), one-bit payloads for Boolean inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms import distribute_inputs_async, expected_message_count
from repro.analysis import BoundCheck, growth_exponent
from repro.core import RingConfiguration


SWEEP = (5, 9, 15, 21, 31, 45)


def test_e1_exact_counts_sweep(record_bound, benchmark):
    measured = []
    for n in SWEEP:
        config = RingConfiguration.random(n, random.Random(n), oriented=False)
        result = distribute_inputs_async(config)
        expected = expected_message_count(n, config.is_oriented)
        record_bound(
            BoundCheck("E1 messages==n(n-1)", n, result.stats.messages, expected, "upper")
        )
        record_bound(
            BoundCheck("E1 messages==n(n-1)", n, result.stats.messages, expected, "lower")
        )
        measured.append(result.stats.messages)
    assert growth_exponent(SWEEP, measured) == pytest.approx(2.0, abs=0.1)
    config = RingConfiguration.random(25, random.Random(25), oriented=False)
    benchmark(lambda: distribute_inputs_async(config))


def test_e1_one_bit_messages(record_bound, benchmark):
    n = 21
    config = RingConfiguration.oriented([i % 2 for i in range(n)])
    result = benchmark(lambda: distribute_inputs_async(config))
    # (tag bit, value bit): 2 bits per message under our encoding.
    record_bound(
        BoundCheck("E1 bit cost", n, result.stats.bits, 2 * n * (n - 1), "upper")
    )
