"""E19/E20: counting on dynamic and content-oblivious topologies.

Paper claims: history-tree counting on a 1-interval-connected dynamic
network terminates in O(n) rounds (Di Luna–Viglietta, arXiv:2204.02128,
bound 3n − 2); beep-circulation counting on an oriented leader ring
costs exactly 2n rounds, messages and bits under content-oblivious
delivery (Chalopin et al., arXiv:2603.28260).  These rows mirror the
``bench --suite dynamic`` artifact (BENCH_dynamic.json) statistically.
"""

from __future__ import annotations

from repro.analysis import BoundCheck, growth_exponent
from repro.perf.dynamic import dynamic_workload_spec
from repro.runtime.spec import execute

DYNAMIC_SWEEP = (4, 8, 12, 16)
OBLIVIOUS_SWEEP = (8, 32, 128)


def test_e19_dynamic_counting_linear_rounds(record_bound, benchmark):
    rounds = []
    for n in DYNAMIC_SWEEP:
        result = execute(dynamic_workload_spec("dynamic_counting", n))
        assert all(out == n for out in result.outputs)
        record_bound(BoundCheck("E19 dynamic rounds", n, result.cycles, 3 * n, "upper"))
        record_bound(
            BoundCheck(
                "E19 dynamic messages",
                n,
                result.stats.messages,
                2 * n * result.cycles,
                "upper",
            )
        )
        rounds.append(result.cycles)
    exponent = growth_exponent(DYNAMIC_SWEEP, rounds)
    assert exponent < 1.3  # rounds are linear in n, not n log n or n²
    spec = dynamic_workload_spec("dynamic_counting", 8)
    benchmark(lambda: execute(spec))


def test_e20_oblivious_counting_exact_2n(record_bound, benchmark):
    for n in OBLIVIOUS_SWEEP:
        result = execute(dynamic_workload_spec("oblivious_counting", n))
        assert all(out == n for out in result.outputs)
        for kind in ("upper", "lower"):
            record_bound(BoundCheck("E20 beep rounds", n, result.cycles, 2 * n, kind))
            record_bound(
                BoundCheck("E20 beep bits", n, result.stats.bits, 2 * n, kind)
            )
    spec = dynamic_workload_spec("oblivious_counting", 32)
    benchmark(lambda: execute(spec))
