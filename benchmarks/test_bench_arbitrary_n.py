"""E12/E13 (§7): Θ(n log n) lower bounds at *arbitrary* ring sizes.

Paper claims: the nonuniform pull-back (E12, §7.1.1) extends the XOR
bound to every n; the two-stage palindrome construction (E13, §7.2.1)
extends orientation, and the balanced-walk construction (§7.2.2) extends
start synchronization to every even n.  For each size we build the
construction, verify its fooling conditions, and confirm our matching
algorithms pay at least the certified Σβ/2 on the adversarial inputs.
"""

from __future__ import annotations

from repro.algorithms import compute_sync, quasi_orient, synchronize_start
from repro.algorithms.functions import XOR
from repro.analysis import BoundCheck
from repro.core import RingConfiguration
from repro.homomorphisms import start_sync_construction, xor_pair
from repro.lowerbounds import orientation_arbitrary_pair, xor_arbitrary_pair


def test_e12_xor_arbitrary_n(record_bound, benchmark):
    for n in (60, 100, 150, 243):
        pair = xor_arbitrary_pair(n)
        assert pair.verify_neighborhoods()
        assert pair.verify_symmetry(max_k=2)
        bound = pair.message_lower_bound()
        cost = compute_sync(pair.ring_a, XOR).stats.messages
        record_bound(BoundCheck("E12 XOR arbitrary-n", n, cost, bound, "lower"))
    benchmark(lambda: xor_pair(500))


def test_e13_orientation_arbitrary_n(record_bound, benchmark):
    for n in (501, 999):
        pair = orientation_arbitrary_pair(n, max_alpha=96)
        assert pair.verify_neighborhoods()
        assert pair.verify_symmetry(max_k=2)
        bound = pair.message_lower_bound()
        cost = quasi_orient(pair.ring_a).stats.messages
        record_bound(BoundCheck("E13 orient arbitrary-n", n, cost, bound, "lower"))
    benchmark(lambda: orientation_arbitrary_pair(501, max_alpha=32))


def test_e13_start_sync_arbitrary_even_n(record_bound, benchmark):
    from repro.algorithms.start_sync import message_bound

    for n in (108, 200, 346):
        construction = start_sync_construction(n)
        ring = RingConfiguration.oriented((0,) * n)
        result = synchronize_start(ring, construction.schedule)
        # Sandwich: adversarial schedule stays within the upper bound but
        # costs a real fraction of it (the lower-bound regime).
        record_bound(
            BoundCheck("E13 ssync adv ≤ upper", n, result.stats.messages,
                       message_bound(n), "upper")
        )
        record_bound(
            BoundCheck("E13 ssync adv ≥ n", n, result.stats.messages, float(n), "lower")
        )
    construction = start_sync_construction(108)
    ring = RingConfiguration.oriented((0,) * 108)
    benchmark(lambda: synchronize_start(ring, construction.schedule))
