"""Symmetry/fooling analysis benchmarks (pytest-benchmark mirror of
``repro bench --suite analysis``).

These track the prefix-doubling equivalence engine the lower-bound
checks stand on: full SI profiles, fooling-pair verification, and
shared-neighborhood witness search — each cross-checked against the
naive §2 tuple oracle, with the measured speedup recorded as a bound
row.  ``python -m repro bench --suite analysis`` writes the same
workloads' timings to BENCH_analysis.json for PR-over-PR trajectories.
"""

from __future__ import annotations

import random
import time

from repro.analysis import BoundCheck
from repro.core import RingConfiguration
from repro.core.equivalence import EquivalenceEngine
from repro.core.neighborhood import (
    naive_symmetry_profile,
    naive_symmetry_profile_set,
)
from repro.perf import profile_radius


def _mixed_ring(n: int) -> RingConfiguration:
    return RingConfiguration.random(n, random.Random(0x51 + n), oriented=False)


def test_symmetry_profile_engine(benchmark):
    """Full SI profile at n=1024 through the equivalence engine."""
    ring = _mixed_ring(1024)
    max_k = profile_radius(1024)
    profile = benchmark(lambda: EquivalenceEngine([ring]).symmetry_profile(max_k))
    assert profile[0] >= 1 and len(profile) == max_k + 1


def test_symmetry_profile_speedup(record_bound):
    """Engine ≥ 10x faster than the naive path on a full profile.

    Measured at n=512 (the committed BENCH_analysis.json pins n=1024,
    where the gap is far larger); the 10x bound leaves two orders of
    magnitude of margin against CI timer noise.
    """
    ring = _mixed_ring(512)
    max_k = profile_radius(512)
    start = time.perf_counter()
    fast = EquivalenceEngine([ring]).symmetry_profile(max_k)
    engine_seconds = time.perf_counter() - start
    start = time.perf_counter()
    slow = naive_symmetry_profile(ring, max_k)
    naive_seconds = time.perf_counter() - start
    assert fast == slow
    speedup = naive_seconds / max(engine_seconds, 1e-9)
    record_bound(
        BoundCheck("SI profile engine speedup", 512, speedup, 10.0, "lower")
    )


def test_fooling_verification_engine(benchmark):
    """§6.3.1 fooling-pair verification (witness + full SI profile) at n=729."""
    from repro.lowerbounds import xor_sync_pair

    pair = xor_sync_pair(6)  # n = 729

    def verify():
        engine = EquivalenceEngine([pair.ring_a, pair.ring_b])
        witness = engine.first_witness(pair.alpha)
        profile = engine.symmetry_profile(pair.alpha)
        return witness, profile

    witness, profile = benchmark(verify)
    assert witness is not None
    assert all(profile[k] >= pair.beta[k] for k in range(pair.alpha + 1))


def test_fooling_verification_matches_oracle(record_bound):
    """Engine profile of the joint pair is byte-identical to the oracle."""
    from repro.lowerbounds import xor_sync_pair

    pair = xor_sync_pair(4)  # n = 81
    engine = EquivalenceEngine([pair.ring_a, pair.ring_b])
    assert engine.symmetry_profile(pair.alpha) == naive_symmetry_profile_set(
        [pair.ring_a, pair.ring_b], pair.alpha
    )
    record_bound(
        BoundCheck(
            "fooling pair Σβ/2", 81, pair.message_lower_bound(), 81 / 27, "lower"
        )
    )


def test_witness_pairs_engine(benchmark):
    """Figure 6 witness-pair enumeration at n=1023 through the engine."""
    ring_a = RingConfiguration.oriented((0,) * 1023)
    ring_b = RingConfiguration.half_reversed(1023)
    alpha = (1023 - 2) // 4

    def count():
        engine = EquivalenceEngine([ring_a, ring_b])
        return sum(1 for _ in engine.witness_pairs(alpha))

    assert benchmark(count) > 0
