"""E4 (§4.2.2, Figure 4): quasi-orientation in O(n log n).

Paper claim: ≤ 3.5·n(log₃ n + 1) messages, ≤ n(2·log₃ n + 4) cycles;
odd rings end fully oriented, even rings at worst alternating.
"""

from __future__ import annotations

import random

from repro.algorithms import orient_ring, quasi_orient
from repro.algorithms.orientation import cycle_bound, message_bound
from repro.analysis import BoundCheck, best_shape
from repro.core import RingConfiguration

SWEEP = (9, 27, 81, 161, 243)


def test_e4_message_bound_sweep(record_bound, benchmark):
    worst_counts = []
    for n in SWEEP:
        worst = 0
        for seed in range(3):
            config = RingConfiguration.random(n, random.Random(seed))
            switched, result = orient_ring(config)
            assert switched.is_oriented  # odd sizes in the sweep
            worst = max(worst, result.stats.messages)
        record_bound(BoundCheck("E4 orient messages", n, worst, message_bound(n), "upper"))
        worst_counts.append(worst)
    assert best_shape(SWEEP, worst_counts) in ("nlogn", "linear")
    config = RingConfiguration.random(81, random.Random(5))
    benchmark(lambda: quasi_orient(config))


def test_e4_cycle_bound(record_bound, benchmark):
    n = 243
    config = RingConfiguration.random(n, random.Random(9))
    result = benchmark(lambda: quasi_orient(config))
    record_bound(BoundCheck("E4 orient cycles", n, result.cycles, cycle_bound(n), "upper"))


def test_e4_even_ring_quasi(record_bound, benchmark):
    """Even rings: still within bounds; result may only alternate (Thm 3.5)."""
    n = 128
    config = RingConfiguration.random(n, random.Random(11))

    def run():
        switched, result = orient_ring(config)
        assert switched.is_quasi_oriented
        return result

    result = benchmark(run)
    record_bound(
        BoundCheck("E4 even ring", n, result.stats.messages, message_bound(n), "upper")
    )
