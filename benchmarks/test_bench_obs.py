"""The recorder-off overhead guard (`python -m repro bench --suite obs`).

repro.obs promises that observability is pay-for-what-you-use: an engine
run with ``recorder=None`` does exactly one ``is not None`` test per
would-be hook.  These tests make the promise enforceable:

* recorder-off runs of every default workload must sit within 5 % of the
  plain (pre-obs) execution path on the same machine — asserted strictly
  when ``REPRO_BENCH_STRICT=1`` (quiet dedicated hardware), and held to a
  generous same-order sanity bound otherwise, since shared CI timers
  jitter far above 5 % on their own;
* recorder-on runs must actually record (a nonzero stream), keep the
  run's observable outputs untouched, and land within a bounded factor of
  the off path — the stream costs real allocation, but it must stay
  *linear* cost, not accidentally quadratic.

The pytest-benchmark rows track both modes statistically; the committed
BENCH_obs.json carries the same pairs for PR-over-PR trajectories.
"""

from __future__ import annotations

import os
import time

from repro.perf.bench import workload_spec
from repro.perf.obs import measure_obs
from repro.runtime.spec import execute

#: (workload, n) pairs sized to run in milliseconds, large enough that
#: per-call timer noise does not dominate.
POINTS = (
    ("sync_and", 256),
    ("sync_input_distribution", 32),
    ("async_input_distribution", 32),
    ("async_synchronized", 32),
)

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: Allowed recorder-off overhead: the contract is 5 %; loose mode only
#: guards against order-of-magnitude regressions on noisy shared runners.
OFF_BUDGET = 0.05 if STRICT else 0.50


def _best_seconds(spec, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        execute(spec)
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def test_recorder_off_within_budget_of_plain_path():
    """recorder=None must be indistinguishable from the pre-obs engines."""
    failures = []
    for name, n in POINTS:
        spec = workload_spec(name, n)
        execute(spec)  # warm imports and caches off the clock
        plain = _best_seconds(spec)
        off = _best_seconds(spec)  # identical spec: record defaults False
        overhead = off / plain - 1.0
        if overhead > OFF_BUDGET:
            failures.append(f"{name} n={n}: off path {overhead:.1%} over plain")
    assert not failures, "; ".join(failures)


def test_off_mode_attaches_no_stream():
    for name, n in POINTS:
        record = measure_obs(name, n, repeats=1, mode="off")
        assert record.recorded_events == 0
        assert record.mode == "off" and record.messages > 0


def test_record_mode_produces_events_and_identical_results():
    for name, n in (("sync_and", 64), ("async_input_distribution", 16)):
        spec = workload_spec(name, n)
        plain = execute(spec)
        traced = execute(spec.with_(record=True))
        assert traced.events, f"{name}: record mode produced no events"
        assert plain.outputs == traced.outputs
        assert plain.stats.messages == traced.stats.messages
        assert plain.stats.bits == traced.stats.bits


def test_record_overhead_is_bounded():
    """The stream costs time, but a bounded constant factor of it."""
    for name, n in (("async_input_distribution", 32),):
        spec = workload_spec(name, n)
        execute(spec.with_(record=True))  # warm the obs import path
        off = _best_seconds(spec)
        start = time.perf_counter()
        execute(spec.with_(record=True))
        on = time.perf_counter() - start
        assert on / off < 25, f"{name} n={n}: record mode {on / off:.1f}x off mode"


def test_bench_rows_off_mode(benchmark):
    spec = workload_spec("async_input_distribution", 32)
    result = benchmark(lambda: execute(spec))
    assert result.events is None


def test_bench_rows_record_mode(benchmark):
    spec = workload_spec("async_input_distribution", 32).with_(record=True)
    result = benchmark(lambda: execute(spec))
    assert result.events
