"""Engine hot-path benchmarks (pytest-benchmark mirror of `repro bench`).

These track the raw simulator loops the whole experiment suite stands on:
the general asynchronous event loop (incremental pending structure), the
Theorem 5.1 synchronizing adversary (double-buffered inflight store), and
the synchronous lock-step engine (live halt counter, reused arrival
buffers).  `python -m repro bench` writes the same workloads' throughput
to BENCH_simulators.json for PR-over-PR trajectories; these rows give the
statistical view.
"""

from __future__ import annotations

import random

from repro.algorithms.async_input_distribution import (
    AsyncInputDistribution,
    distribute_inputs_async,
)
from repro.algorithms.sync_input_distribution import distribute_inputs_sync
from repro.asynch import RoundRobinScheduler, run_async_synchronized
from repro.core import RingConfiguration


def _ring(n: int) -> RingConfiguration:
    return RingConfiguration.random(n, random.Random(n), oriented=True)


def test_engine_async_event_loop(benchmark):
    """General async engine on the n(n−1) input-distribution workload."""
    config = _ring(33)
    result = benchmark(
        lambda: distribute_inputs_async(config, scheduler=RoundRobinScheduler())
    )
    assert result.stats.messages == 33 * 32


def test_engine_synchronizing_adversary(benchmark):
    """Theorem 5.1 adversary delivering the same n(n−1) messages in waves."""
    config = _ring(33)
    result = benchmark(
        lambda: run_async_synchronized(
            config,
            lambda value, n: AsyncInputDistribution(value, n, assume_oriented=True),
        )
    )
    assert result.stats.messages == 33 * 32


def test_engine_sync_lockstep(benchmark):
    """Synchronous engine on the Figure 2 O(n log n) workload."""
    config = _ring(32)
    result = benchmark(lambda: distribute_inputs_sync(config))
    assert result.outputs[0] is not None
